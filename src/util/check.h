#ifndef DPSTORE_UTIL_CHECK_H_
#define DPSTORE_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace dpstore {
namespace internal_check {

/// Accumulates a failure message and aborts the process when destroyed.
/// Used only via the DPSTORE_CHECK* macros below.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "CHECK failed: " << condition << " at " << file << ":" << line
            << " ";
  }

  ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// glog-style voidifier: operator& has lower precedence than operator<< so
/// the streamed message is fully built before the expression becomes void
/// (both arms of the ?: in the macros below must have type void).
struct Voidify {
  void operator&(CheckFailureStream&) {}
  void operator&(CheckFailureStream&&) {}
};

}  // namespace internal_check
}  // namespace dpstore

/// Aborts with a message when `condition` is false. Active in all build
/// modes: these guard internal invariants whose violation would otherwise be
/// silent memory corruption in a storage engine. Supports streaming extra
/// context: DPSTORE_CHECK(x > 0) << "x=" << x;
#define DPSTORE_CHECK(condition)                                 \
  (condition) ? (void)0                                          \
              : ::dpstore::internal_check::Voidify() &           \
                    ::dpstore::internal_check::CheckFailureStream( \
                        #condition, __FILE__, __LINE__)

#define DPSTORE_CHECK_OP_(a, b, op)                              \
  ((a)op(b)) ? (void)0                                           \
             : ::dpstore::internal_check::Voidify() &            \
                   ::dpstore::internal_check::CheckFailureStream( \
                       #a " " #op " " #b, __FILE__, __LINE__)

#define DPSTORE_CHECK_EQ(a, b) DPSTORE_CHECK_OP_(a, b, ==)
#define DPSTORE_CHECK_NE(a, b) DPSTORE_CHECK_OP_(a, b, !=)
#define DPSTORE_CHECK_LT(a, b) DPSTORE_CHECK_OP_(a, b, <)
#define DPSTORE_CHECK_LE(a, b) DPSTORE_CHECK_OP_(a, b, <=)
#define DPSTORE_CHECK_GT(a, b) DPSTORE_CHECK_OP_(a, b, >)
#define DPSTORE_CHECK_GE(a, b) DPSTORE_CHECK_OP_(a, b, >=)

/// Checks that a Status expression is OK.
#define DPSTORE_CHECK_OK(expr)                                          \
  do {                                                                  \
    const auto _dpstore_check_status = (expr);                          \
    if (!_dpstore_check_status.ok()) {                                  \
      ::dpstore::internal_check::CheckFailureStream(#expr, __FILE__,    \
                                                    __LINE__)           \
          << _dpstore_check_status.ToString();                          \
    }                                                                   \
  } while (0)

#endif  // DPSTORE_UTIL_CHECK_H_
