#ifndef DPSTORE_UTIL_STATUS_H_
#define DPSTORE_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace dpstore {

/// Canonical error space, modeled after the usual database-engine status
/// codes. The library does not use exceptions (see DESIGN.md); every fallible
/// public operation returns a Status or a StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kResourceExhausted = 6,
  kDataLoss = 7,
  kUnavailable = 8,
  kUnimplemented = 9,
  kDeadlineExceeded = 10,
};

/// Returns a stable human-readable name ("OK", "NOT_FOUND", ...).
const char* StatusCodeToString(StatusCode code);

/// A cheap value type carrying an error code plus a context message.
///
/// Usage mirrors absl::Status:
///
///     Status s = server.ReadBlock(i, &block);
///     if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE_NAME: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors, one per canonical code.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status ResourceExhaustedError(std::string message);
Status DataLossError(std::string message);
Status UnavailableError(std::string message);
Status UnimplementedError(std::string message);
Status DeadlineExceededError(std::string message);

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if not OK.
#define DPSTORE_RETURN_IF_ERROR(expr)                   \
  do {                                                  \
    ::dpstore::Status _dpstore_status = (expr);         \
    if (!_dpstore_status.ok()) return _dpstore_status;  \
  } while (0)

}  // namespace dpstore

#endif  // DPSTORE_UTIL_STATUS_H_
