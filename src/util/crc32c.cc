#include "util/crc32c.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define DPSTORE_CRC32C_X86 1
#else
#define DPSTORE_CRC32C_X86 0
#endif

namespace dpstore {
namespace crc32c {
namespace {

// Slice-by-8 tables for the reflected Castagnoli polynomial, built once
// at startup. Table [0] is the classic byte-at-a-time table; tables
// [1..7] fold 8 input bytes per iteration.
struct Tables {
  uint32_t t[8][256];
  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);  // reflected poly
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (int k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFF] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Tables& tables() {
  static const Tables* t = new Tables();
  return *t;
}

uint32_t ExtendTable(uint32_t crc, const uint8_t* data, size_t len) {
  const Tables& tb = tables();
  crc = ~crc;
  while (len >= 8) {
    uint64_t word;
    std::memcpy(&word, data, 8);
    word ^= crc;  // little-endian: low 4 bytes absorb the running crc
    crc = tb.t[7][word & 0xFF] ^ tb.t[6][(word >> 8) & 0xFF] ^
          tb.t[5][(word >> 16) & 0xFF] ^ tb.t[4][(word >> 24) & 0xFF] ^
          tb.t[3][(word >> 32) & 0xFF] ^ tb.t[2][(word >> 40) & 0xFF] ^
          tb.t[1][(word >> 48) & 0xFF] ^ tb.t[0][(word >> 56) & 0xFF];
    data += 8;
    len -= 8;
  }
  while (len-- > 0) {
    crc = tb.t[0][(crc ^ *data++) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

#if DPSTORE_CRC32C_X86
__attribute__((target("sse4.2"))) uint32_t ExtendSse42(uint32_t crc,
                                                       const uint8_t* data,
                                                       size_t len) {
  crc = ~crc;
#if defined(__x86_64__)
  uint64_t crc64 = crc;
  while (len >= 8) {
    uint64_t word;
    std::memcpy(&word, data, 8);
    crc64 = _mm_crc32_u64(crc64, word);
    data += 8;
    len -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
#endif
  while (len-- > 0) crc = _mm_crc32_u8(crc, *data++);
  return ~crc;
}
#endif  // DPSTORE_CRC32C_X86

bool UseHardware() {
  // Same contract as storage/kernels.h: DPSTORE_KERNEL=scalar forces the
  // portable variant; nothing can force hardware the CPU lacks.
  static const bool use = [] {
#if DPSTORE_CRC32C_X86
    const char* env = std::getenv("DPSTORE_KERNEL");
    if (env != nullptr && std::strcmp(env, "scalar") == 0) return false;
    return __builtin_cpu_supports("sse4.2") != 0;
#else
    return false;
#endif
  }();
  return use;
}

}  // namespace

uint32_t Extend(uint32_t crc, const uint8_t* data, size_t len) {
#if DPSTORE_CRC32C_X86
  if (UseHardware()) return ExtendSse42(crc, data, len);
#endif
  return ExtendTable(crc, data, len);
}

const char* VariantName() { return UseHardware() ? "sse42" : "table"; }

}  // namespace crc32c
}  // namespace dpstore
