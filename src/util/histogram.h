#ifndef DPSTORE_UTIL_HISTOGRAM_H_
#define DPSTORE_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace dpstore {

/// Counting histogram over discrete 64-bit event identifiers.
///
/// The empirical-privacy harness builds one histogram per query sequence and
/// compares event probabilities across the pair; ordered iteration (std::map)
/// keeps reports deterministic.
class EventHistogram {
 public:
  void Add(uint64_t event, uint64_t count = 1);

  uint64_t Count(uint64_t event) const;
  uint64_t total() const { return total_; }
  size_t distinct() const { return counts_.size(); }

  /// Empirical probability of `event`; 0 if the histogram is empty.
  double Probability(uint64_t event) const;

  /// All events with non-zero count, ascending.
  std::vector<uint64_t> Events() const;

  /// Union of events present in either histogram, ascending.
  static std::vector<uint64_t> UnionEvents(const EventHistogram& a,
                                           const EventHistogram& b);

  void Merge(const EventHistogram& other);
  void Clear();

 private:
  std::map<uint64_t, uint64_t> counts_;
  uint64_t total_ = 0;
};

/// Integer-bucket histogram for distribution summaries (e.g. stash size over
/// time). Bucket `i` counts samples with value exactly `i`.
class ValueHistogram {
 public:
  void Add(int64_t value);

  uint64_t total() const { return total_; }
  int64_t min() const;
  int64_t max() const;
  double Mean() const;

  /// Fraction of samples with value > threshold (the tail the paper bounds).
  double TailFraction(int64_t threshold) const;

  const std::map<int64_t, uint64_t>& buckets() const { return buckets_; }

 private:
  std::map<int64_t, uint64_t> buckets_;
  uint64_t total_ = 0;
};

}  // namespace dpstore

#endif  // DPSTORE_UTIL_HISTOGRAM_H_
