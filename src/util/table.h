#ifndef DPSTORE_UTIL_TABLE_H_
#define DPSTORE_UTIL_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace dpstore {

/// Fixed-width ASCII table printer used by every bench binary so that the
/// regenerated "paper tables" share one format. Cells are strings; numeric
/// helpers format with sensible precision.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  /// Starts a new row; fill it with the Add* calls below. Rows with fewer
  /// cells than columns are padded with empty cells at print time.
  TablePrinter& AddRow();
  TablePrinter& AddCell(std::string value);
  TablePrinter& AddInt(int64_t value);
  TablePrinter& AddUint(uint64_t value);
  /// Fixed-point with `digits` fractional digits.
  TablePrinter& AddDouble(double value, int digits = 3);
  /// Scientific notation, for negligible probabilities.
  TablePrinter& AddScientific(double value, int digits = 2);

  /// Renders the table with a separator under the header.
  void Print(std::ostream& os) const;

  /// Comma-separated form for downstream plotting.
  void PrintCsv(std::ostream& os) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` as fixed point with `digits` fractional digits.
std::string FormatDouble(double value, int digits = 3);

/// Prints a section banner ("== title ==") so multi-table bench output stays
/// skimmable.
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace dpstore

#endif  // DPSTORE_UTIL_TABLE_H_
