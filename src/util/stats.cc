#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dpstore {

void OnlineStats::Add(double x) {
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  int64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double mean = mean_ + delta * static_cast<double>(other.count_) /
                            static_cast<double>(n);
  m2_ = m2_ + other.m2_ +
        delta * delta * static_cast<double>(count_) *
            static_cast<double>(other.count_) / static_cast<double>(n);
  mean_ = mean;
  count_ = n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Percentiles::Quantile(double q) {
  DPSTORE_CHECK(!samples_.empty());
  DPSTORE_CHECK_GE(q, 0.0);
  DPSTORE_CHECK_LE(q, 1.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (samples_.size() == 1) return samples_[0];
  double pos = q * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  if (lo + 1 >= samples_.size()) return samples_.back();
  double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

}  // namespace dpstore
