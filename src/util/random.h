#ifndef DPSTORE_UTIL_RANDOM_H_
#define DPSTORE_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace dpstore {

/// Deterministic, seedable pseudo-random generator used for all simulation
/// randomness (workloads, scheme coin flips in tests/benches).
///
/// The core generator is xoshiro256** seeded through SplitMix64, which gives
/// high-quality 64-bit output with a tiny state; determinism across runs with
/// a fixed seed is what the empirical-privacy harness and the reproducibility
/// of EXPERIMENTS.md depend on. Cryptographic randomness for keys/nonces is
/// provided separately by crypto::SystemRandomBytes.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with the same seed produce the
  /// same stream.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64 bits.
  uint64_t NextUint64();

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (Lemire's method
  /// with rejection).
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Returns k distinct values uniformly sampled from [0, n) using Floyd's
  /// algorithm. Requires k <= n. Order is unspecified.
  std::vector<uint64_t> SampleDistinct(uint64_t k, uint64_t n);

  /// Returns k distinct values from [0, n) \ {excluded}. Requires k <= n-1.
  std::vector<uint64_t> SampleDistinctExcluding(uint64_t k, uint64_t n,
                                                uint64_t excluded);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent child generator; useful for giving each scheme
  /// component its own stream without correlated draws.
  Rng Fork();

 private:
  uint64_t state_[4];
};

/// Bounded Zipf(n, s) sampler over {0, ..., n-1} (rank 0 most popular).
///
/// Uses the rejection-inversion method of Hörmann & Derflinger, which is
/// O(1) per sample after O(1) setup, so benches can draw hundreds of millions
/// of skewed keys. s = 0 degenerates to uniform; s ~ 0.99 matches the YCSB
/// default.
class ZipfDistribution {
 public:
  /// Requires n >= 1 and s >= 0.
  ZipfDistribution(uint64_t n, double s);

  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;       // H(1.5) - 1
  double h_n_;        // H(n + 0.5)
  double threshold_;  // rejection threshold
};

}  // namespace dpstore

#endif  // DPSTORE_UTIL_RANDOM_H_
