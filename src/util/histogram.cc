#include "util/histogram.h"

#include <algorithm>

#include "util/check.h"

namespace dpstore {

void EventHistogram::Add(uint64_t event, uint64_t count) {
  counts_[event] += count;
  total_ += count;
}

uint64_t EventHistogram::Count(uint64_t event) const {
  auto it = counts_.find(event);
  return it == counts_.end() ? 0 : it->second;
}

double EventHistogram::Probability(uint64_t event) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(Count(event)) / static_cast<double>(total_);
}

std::vector<uint64_t> EventHistogram::Events() const {
  std::vector<uint64_t> out;
  out.reserve(counts_.size());
  for (const auto& [event, count] : counts_) out.push_back(event);
  return out;
}

std::vector<uint64_t> EventHistogram::UnionEvents(const EventHistogram& a,
                                                  const EventHistogram& b) {
  std::vector<uint64_t> ea = a.Events();
  std::vector<uint64_t> eb = b.Events();
  std::vector<uint64_t> out;
  out.reserve(ea.size() + eb.size());
  std::set_union(ea.begin(), ea.end(), eb.begin(), eb.end(),
                 std::back_inserter(out));
  return out;
}

void EventHistogram::Merge(const EventHistogram& other) {
  for (const auto& [event, count] : other.counts_) Add(event, count);
}

void EventHistogram::Clear() {
  counts_.clear();
  total_ = 0;
}

void ValueHistogram::Add(int64_t value) {
  ++buckets_[value];
  ++total_;
}

int64_t ValueHistogram::min() const {
  DPSTORE_CHECK(!buckets_.empty());
  return buckets_.begin()->first;
}

int64_t ValueHistogram::max() const {
  DPSTORE_CHECK(!buckets_.empty());
  return buckets_.rbegin()->first;
}

double ValueHistogram::Mean() const {
  if (total_ == 0) return 0.0;
  double sum = 0.0;
  for (const auto& [value, count] : buckets_) {
    sum += static_cast<double>(value) * static_cast<double>(count);
  }
  return sum / static_cast<double>(total_);
}

double ValueHistogram::TailFraction(int64_t threshold) const {
  if (total_ == 0) return 0.0;
  uint64_t tail = 0;
  for (auto it = buckets_.upper_bound(threshold); it != buckets_.end(); ++it) {
    tail += it->second;
  }
  return static_cast<double>(tail) / static_cast<double>(total_);
}

}  // namespace dpstore
