#ifndef DPSTORE_UTIL_STATUSOR_H_
#define DPSTORE_UTIL_STATUSOR_H_

#include <optional>
#include <utility>

#include "util/check.h"
#include "util/status.h"

namespace dpstore {

/// Either a value of type T or a non-OK Status explaining why the value is
/// absent. Accessing the value of a non-OK StatusOr aborts (CHECK failure),
/// matching absl::StatusOr semantics.
template <typename T>
class StatusOr {
 public:
  /// Implicitly constructible from a value...
  StatusOr(T value) : status_(OkStatus()), value_(std::move(value)) {}
  /// ...or from a non-OK status. Constructing from an OK status is a bug.
  StatusOr(Status status) : status_(std::move(status)) {
    DPSTORE_CHECK(!status_.ok())
        << "StatusOr constructed from OK status without a value";
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DPSTORE_CHECK(ok()) << "value() on non-OK StatusOr: " << status_;
    return *value_;
  }
  T& value() & {
    DPSTORE_CHECK(ok()) << "value() on non-OK StatusOr: " << status_;
    return *value_;
  }
  T&& value() && {
    DPSTORE_CHECK(ok()) << "value() on non-OK StatusOr: " << status_;
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a StatusOr expression to `lhs`, or returns the error.
#define DPSTORE_ASSIGN_OR_RETURN(lhs, expr)              \
  auto DPSTORE_CONCAT_(_statusor_, __LINE__) = (expr);   \
  if (!DPSTORE_CONCAT_(_statusor_, __LINE__).ok())       \
    return DPSTORE_CONCAT_(_statusor_, __LINE__).status(); \
  lhs = std::move(DPSTORE_CONCAT_(_statusor_, __LINE__)).value()

#define DPSTORE_CONCAT_INNER_(a, b) a##b
#define DPSTORE_CONCAT_(a, b) DPSTORE_CONCAT_INNER_(a, b)

}  // namespace dpstore

#endif  // DPSTORE_UTIL_STATUSOR_H_
