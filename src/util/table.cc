#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.h"

namespace dpstore {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  DPSTORE_CHECK(!columns_.empty());
}

TablePrinter& TablePrinter::AddRow() {
  rows_.emplace_back();
  return *this;
}

TablePrinter& TablePrinter::AddCell(std::string value) {
  DPSTORE_CHECK(!rows_.empty()) << "AddRow() before AddCell()";
  DPSTORE_CHECK_LT(rows_.back().size(), columns_.size());
  rows_.back().push_back(std::move(value));
  return *this;
}

TablePrinter& TablePrinter::AddInt(int64_t value) {
  return AddCell(std::to_string(value));
}

TablePrinter& TablePrinter::AddUint(uint64_t value) {
  return AddCell(std::to_string(value));
}

TablePrinter& TablePrinter::AddDouble(double value, int digits) {
  return AddCell(FormatDouble(value, digits));
}

TablePrinter& TablePrinter::AddScientific(double value, int digits) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(digits) << value;
  return AddCell(os.str());
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c])) << cell;
      if (c + 1 < columns_.size()) os << "  ";
    }
    os << "\n";
  };
  print_row(columns_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) os << ",";
      os << (c < cells.size() ? cells[c] : std::string());
    }
    os << "\n";
  };
  print_row(columns_);
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace dpstore
