#include "server/storage_service.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "storage/backend.h"
#include "storage/wire.h"

namespace dpstore {

namespace {

Status SendError(int fd, const Status& status, uint64_t ticket,
                 uint8_t version) {
  return wire::WriteFrame(fd, wire::EncodeReplyError(status, ticket, version));
}

Status SendAck(int fd, uint64_t ticket, uint8_t version) {
  static const BlockBuffer kEmpty;
  return wire::WriteFrame(fd,
                          wire::EncodeReplyBlocks(kEmpty, ticket, version));
}

/// Reply-size cap shared by the Open geometry check and the per-download
/// check. Divides rather than multiplies: a forged count must not be able
/// to wrap the product and size a terminal allocation; header headroom
/// keeps a full reply frame under the cap too.
bool DownloadReplyTooLarge(uint64_t count, size_t block_size) {
  return block_size > 0 &&
         count > (wire::kMaxFrameBytes - wire::kHeaderBytes) / block_size;
}

/// Executes one decoded frame against `engine` through the connection's
/// namespace binding and writes exactly one reply frame to `fd`,
/// returning the write status. The single-frame semantics — checks,
/// error strings, reply bytes — are PR 5's per-connection ServeLoop
/// verbatim; only the storage behind them changed. `*exchanges` counts
/// kRequest frames actually executed.
Status DispatchFrame(StorageEngine& engine, unsigned tid, NamespaceHandle* ns,
                     uint8_t* version, wire::DecodedFrame frame, int fd,
                     uint64_t* exchanges) {
  const wire::FrameHeader& header = frame.header;
  const uint64_t ticket = header.ticket;

  if (header.type == wire::FrameType::kOpen) {
    // (Re)bind the connection's namespace; a re-Open simply attaches
    // anew (private mode: a fresh zeroed array, the PR 5 semantics).
    if (header.aux == 0 || header.block_size == 0 ||
        DownloadReplyTooLarge(header.aux, header.block_size)) {
      return SendError(fd, InvalidArgumentError("open: bad geometry"), ticket,
                       header.version);
    }
    // DecodeFrame already rejected unknown modes and a zero shared id.
    StatusOr<NamespaceHandle> handle =
        engine.Attach(header.count, header.aux, header.block_size,
                      static_cast<AttachMode>(header.code));
    if (!handle.ok()) {
      return SendError(fd, handle.status(), ticket, header.version);
    }
    *ns = std::move(*handle);
    // Version negotiation: answer this connection in the dialect its
    // Open arrived in, so v1 clients keep working unmodified.
    *version = header.version;
    return SendAck(fd, ticket, *version);
  }
  if (!ns->valid()) {
    return SendError(fd, FailedPreconditionError("frame before open"), ticket,
                     *version);
  }
  switch (header.type) {
    case wire::FrameType::kRequest: {
      // The decode only bounded the request frame; the REPLY of a
      // download is count * block_size bytes, and duplicate indices make
      // count independent of n. Cap it before the engine sizes an
      // allocation a hostile client chose.
      if (static_cast<StorageRequest::Op>(header.code) ==
              StorageRequest::Op::kDownload &&
          DownloadReplyTooLarge(frame.indices.size(), ns->block_size())) {
        return SendError(
            fd,
            InvalidArgumentError(
                "download reply would exceed the wire frame cap"),
            ticket, *version);
      }
      StorageRequest request;
      request.op = static_cast<StorageRequest::Op>(header.code);
      request.indices = std::move(frame.indices);
      request.payload = std::move(frame.payload);
      // DPF evals carry the domain offset in aux (see wire.h); the reply
      // is a single block, so the download cap above cannot bind.
      if (request.op == StorageRequest::Op::kDpfEval) {
        request.dpf_offset = header.aux;
      }
      StatusOr<StorageReply> reply = engine.ExecuteBatch(tid, *ns, request);
      ++*exchanges;
      return reply.ok() ? wire::WriteFrame(fd,
                                           wire::EncodeReplyBlocks(
                                               reply->blocks, ticket, *version))
                        : SendError(fd, reply.status(), ticket, *version);
    }
    case wire::FrameType::kSetArray: {
      Status status = engine.SetArray(*ns, frame.payload.ToBlocks());
      return status.ok() ? SendAck(fd, ticket, *version)
                         : SendError(fd, status, ticket, *version);
    }
    case wire::FrameType::kPeek: {
      StatusOr<Block> block = engine.Peek(*ns, header.aux);
      if (!block.ok()) return SendError(fd, block.status(), ticket, *version);
      BlockBuffer one(ns->block_size());
      one.Append(*block);
      return wire::WriteFrame(fd,
                              wire::EncodeReplyBlocks(one, ticket, *version));
    }
    case wire::FrameType::kCorrupt: {
      Status status = engine.Corrupt(*ns, header.aux);
      return status.ok() ? SendAck(fd, ticket, *version)
                         : SendError(fd, status, ticket, *version);
    }
    default:
      return SendError(fd,
                       InvalidArgumentError("unexpected frame type on server"),
                       ticket, *version);
  }
}

/// True when `frame` may join a fused engine exchange: a non-empty
/// kRequest that is guaranteed to execute cleanly (every index in range,
/// upload payload aligned, download reply under the frame cap). Frames
/// that could fail are dispatched singly so an error reply is always
/// attributable to exactly the frame that caused it.
bool FusableFrame(const wire::DecodedFrame& frame, const NamespaceHandle& ns) {
  if (frame.header.type != wire::FrameType::kRequest || !ns.valid()) {
    return false;
  }
  if (frame.header.code > 1 || frame.indices.empty()) return false;
  for (BlockId index : frame.indices) {
    if (index >= ns.n()) return false;
  }
  if (static_cast<StorageRequest::Op>(frame.header.code) ==
      StorageRequest::Op::kDownload) {
    return !DownloadReplyTooLarge(frame.indices.size(), ns.block_size());
  }
  return frame.payload.size() == frame.indices.size() &&
         !frame.payload.ragged() &&
         frame.payload.block_size() == ns.block_size();
}

}  // namespace

/// One socket tenant. All fields except `fd` (set once before the reader
/// starts) and `reader` (joined only after `done`) are guarded by the
/// service mutex; `ns`, `version` and the socket writes are additionally
/// touched only by the worker that holds the connection `busy`.
/// One decoded frame plus when the reader enqueued it — the age the
/// shedding policy (options.shed_after_ms) measures.
struct QueuedFrame {
  wire::DecodedFrame frame;
  std::chrono::steady_clock::time_point arrival;
};

struct StorageService::Connection {
  int fd = -1;
  std::thread reader;
  std::deque<QueuedFrame> queue;
  bool scheduled = false;     ///< in ready_
  bool busy = false;          ///< a worker owns it right now
  bool reader_done = false;   ///< reader thread returned
  bool write_failed = false;  ///< a reply write failed; conn is dead
  bool done = false;          ///< finalized, fd closed
  NamespaceHandle ns;
  /// Until a successful Open negotiates the connection's dialect, replies
  /// (e.g. "frame before open") are encoded at kMinWireVersion: every
  /// decoder accepts v1, while a v1-only client would reject a v2 frame
  /// and see a framing failure instead of the intended error.
  uint8_t version = wire::kMinWireVersion;
};

namespace {

StorageEngineOptions EngineOptionsFor(const StorageServiceOptions& options) {
  StorageEngineOptions engine_options;
  engine_options.num_threads = std::max<size_t>(options.num_threads, 1);
  engine_options.lock_stripes = options.lock_stripes;
  engine_options.persist = options.persist;
  return engine_options;
}

}  // namespace

StorageService::StorageService(StorageServiceOptions options)
    : StorageService(options, StorageEngine::Create(EngineOptionsFor(options))) {
}

StatusOr<std::unique_ptr<StorageService>> StorageService::Make(
    StorageServiceOptions options) {
  DPSTORE_ASSIGN_OR_RETURN(std::shared_ptr<StorageEngine> engine,
                           StorageEngine::Open(EngineOptionsFor(options)));
  return std::unique_ptr<StorageService>(
      new StorageService(options, std::move(engine)));
}

StorageService::StorageService(StorageServiceOptions options,
                               std::shared_ptr<StorageEngine> engine)
    : options_(options), engine_(std::move(engine)) {
  workers_.reserve(options_.num_threads);
  for (size_t tid = 0; tid < options_.num_threads; ++tid) {
    workers_.emplace_back(&StorageService::WorkerLoop, this,
                          static_cast<unsigned>(tid));
  }
}

StorageService::~StorageService() { Drain(); }

bool StorageService::HandleConnection(int fd) {
  std::unique_lock<std::mutex> lock(mu_);
  if (draining_ || workers_.empty() ||
      counters_.connections_active >= options_.max_conns) {
    ++counters_.connections_rejected;
    lock.unlock();
    ::close(fd);
    return false;
  }
  // Retire finished connections (joining their readers) on the accept
  // path, so a long-lived server never accumulates dead records.
  for (size_t i = 0; i < conns_.size();) {
    if (conns_[i]->done) {
      if (conns_[i]->reader.joinable()) conns_[i]->reader.join();
      conns_.erase(conns_.begin() + i);
    } else {
      ++i;
    }
  }
  auto conn = std::make_shared<Connection>();
  conn->fd = fd;
  ++counters_.connections_accepted;
  ++counters_.connections_active;
  conns_.push_back(conn);
  conn->reader = std::thread(&StorageService::ReaderLoop, this, conn);
  return true;
}

uint64_t StorageService::ServeBlocking(int fd) {
  NamespaceHandle ns;
  uint8_t version = wire::kMinWireVersion;  // pre-Open; see Connection
  uint64_t exchanges = 0;
  uint64_t frames = 0;
  std::vector<uint8_t> scratch;
  for (;;) {
    StatusOr<wire::DecodedFrame> frame = wire::ReadFrame(fd, &scratch);
    if (!frame.ok()) break;  // EOF or unframeable bytes: close.
    Status sent = DispatchFrame(*engine_, /*tid=*/0, &ns, &version,
                                std::move(*frame), fd, &exchanges);
    ++frames;
    if (!sent.ok()) break;
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(mu_);
  counters_.frames_served += frames;
  counters_.exchanges_served += exchanges;
  return exchanges;
}

void StorageService::ReaderLoop(std::shared_ptr<Connection> conn) {
  std::vector<uint8_t> scratch;
  for (;;) {
    StatusOr<wire::DecodedFrame> frame = wire::ReadFrame(conn->fd, &scratch);
    std::unique_lock<std::mutex> lock(mu_);
    if (!frame.ok() || conn->write_failed) {
      conn->reader_done = true;
      ScheduleLocked(conn);
      return;
    }
    conn->queue.push_back(
        QueuedFrame{std::move(*frame), std::chrono::steady_clock::now()});
    ScheduleLocked(conn);
  }
}

void StorageService::WorkerLoop(unsigned tid) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
    if (ready_.empty()) {
      if (stopping_) return;
      continue;
    }
    std::shared_ptr<Connection> conn = ready_.front();
    ready_.erase(ready_.begin());
    conn->scheduled = false;
    if (conn->queue.empty()) {  // queue dropped after a write failure
      ScheduleLocked(conn);
      continue;
    }
    conn->busy = true;
    ProcessLocked(tid, lock, conn);
    conn->busy = false;
    ScheduleLocked(conn);
  }
}

void StorageService::ProcessLocked(unsigned tid,
                                   std::unique_lock<std::mutex>& lock,
                                   const std::shared_ptr<Connection>& conn) {
  QueuedFrame queued = std::move(conn->queue.front());
  conn->queue.pop_front();
  wire::DecodedFrame head = std::move(queued.frame);

  // Load shedding: a request that sat in the queue past its budget is
  // answered with DeadlineExceeded WITHOUT touching the engine — the
  // client's Wait sees the same code its own deadline_ms would produce,
  // and the server spends its overload time on fresher work. Exactly one
  // reply frame still flows per request frame, so the stream stays in
  // protocol. Control frames are never shed (an Open must bind the
  // namespace or the whole connection is wedged).
  if (options_.shed_after_ms >= 0 &&
      head.header.type == wire::FrameType::kRequest) {
    const auto age = std::chrono::steady_clock::now() - queued.arrival;
    if (age >= std::chrono::milliseconds(options_.shed_after_ms)) {
      const uint64_t age_ms = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(age).count());
      lock.unlock();
      Status sent = SendError(
          conn->fd,
          DeadlineExceededError("server shed: frame queued " +
                                std::to_string(age_ms) + " ms, budget " +
                                std::to_string(options_.shed_after_ms) +
                                " ms"),
          head.header.ticket, conn->version);
      lock.lock();
      ++counters_.frames_served;
      ++counters_.frames_shed;
      if (!sent.ok()) FailLocked(conn);
      return;
    }
  }

  if (!FusableFrame(head, conn->ns)) {
    // Control frames, pre-open traffic and possibly-failing requests take
    // the exact single-frame path. The connection is busy-claimed, so
    // this worker is the only toucher of its fd / ns / version.
    lock.unlock();
    uint64_t executed = 0;
    Status sent = DispatchFrame(*engine_, tid, &conn->ns, &conn->version,
                                std::move(head), conn->fd, &executed);
    lock.lock();
    ++counters_.frames_served;
    counters_.exchanges_served += executed;
    if (!sent.ok()) FailLocked(conn);
    return;
  }

  // --- fused group ---------------------------------------------------
  // Harvest more guaranteed-clean requests of the same direction bound
  // for the same namespace: first the head of this connection's own
  // queue (pipelined client), then the heads of other READY connections
  // (cross-connection fusion — only shared namespaces can match, since
  // private ids are unique). Taking only queue heads, in order, is what
  // preserves every connection's own request/reply order.
  struct GroupItem {
    std::shared_ptr<Connection> conn;
    uint64_t ticket = 0;
    uint64_t count = 0;
    std::vector<BlockId> indices;
    BlockBuffer payload;
  };
  const auto op = static_cast<StorageRequest::Op>(head.header.code);
  const NamespaceId nsid = conn->ns.id();
  // The head always joins, even when alone it exceeds the budget.
  uint64_t budget =
      std::max<uint64_t>(options_.fuse_blocks, head.indices.size());
  std::vector<GroupItem> items;
  std::vector<std::shared_ptr<Connection>> claimed;
  auto take = [&](const std::shared_ptr<Connection>& c,
                  wire::DecodedFrame frame) {
    budget -= frame.indices.size();
    GroupItem item;
    item.conn = c;
    item.ticket = frame.header.ticket;
    item.count = frame.indices.size();
    item.indices = std::move(frame.indices);
    item.payload = std::move(frame.payload);
    items.push_back(std::move(item));
  };
  auto harvest = [&](const std::shared_ptr<Connection>& c) {
    while (!c->queue.empty() && budget > 0) {
      wire::DecodedFrame& front = c->queue.front().frame;
      if (front.header.type != wire::FrameType::kRequest ||
          static_cast<StorageRequest::Op>(front.header.code) != op ||
          front.indices.size() > budget || !FusableFrame(front, c->ns)) {
        break;
      }
      take(c, std::move(front));
      c->queue.pop_front();
    }
  };
  take(conn, std::move(head));
  harvest(conn);
  for (size_t i = 0; i < ready_.size() && budget > 0;) {
    const std::shared_ptr<Connection>& other = ready_[i];
    if (other->ns.valid() && other->ns.id() == nsid &&
        !other->queue.empty() &&
        other->queue.front().frame.header.type ==
            wire::FrameType::kRequest &&
        static_cast<StorageRequest::Op>(
            other->queue.front().frame.header.code) == op &&
        other->queue.front().frame.indices.size() <= budget &&
        FusableFrame(other->queue.front().frame, other->ns)) {
      std::shared_ptr<Connection> c = other;
      ready_.erase(ready_.begin() + i);
      c->scheduled = false;
      c->busy = true;
      claimed.push_back(c);
      harvest(c);
    } else {
      ++i;
    }
  }

  lock.unlock();

  // One engine exchange for the whole group.
  StorageRequest fused;
  fused.op = op;
  uint64_t total = 0;
  for (const GroupItem& item : items) total += item.count;
  fused.indices.reserve(total);
  if (op == StorageRequest::Op::kUpload) {
    fused.payload = BlockBuffer(conn->ns.block_size());
    fused.payload.Reserve(total);
  }
  for (const GroupItem& item : items) {
    fused.indices.insert(fused.indices.end(), item.indices.begin(),
                         item.indices.end());
    for (size_t b = 0; b < item.payload.size(); ++b) {
      fused.payload.Append(item.payload[b]);
    }
  }
  StatusOr<StorageReply> reply = engine_->ExecuteBatch(tid, conn->ns, fused);

  // Slice the one reply into per-frame reply frames — each with its own
  // ticket, written in each connection's request order, byte-identical
  // to unfused execution (EncodeReplyBlocksView borrows the fused
  // payload region; no copy).
  std::vector<std::shared_ptr<Connection>> broken;
  uint64_t offset = 0;
  for (const GroupItem& item : items) {
    Status sent;
    if (!reply.ok()) {
      // Unreachable by construction (fused frames are pre-validated);
      // still answered per frame so no client hangs.
      sent = SendError(item.conn->fd, reply.status(), item.ticket,
                       item.conn->version);
    } else if (op == StorageRequest::Op::kDownload) {
      const size_t bs = item.conn->ns.block_size();
      BlockView body =
          reply->blocks.AllBytes().subspan(offset * bs, item.count * bs);
      sent = wire::WriteFrame(
          item.conn->fd,
          wire::EncodeReplyBlocksView(body, item.count,
                                      static_cast<uint32_t>(bs), item.ticket,
                                      item.conn->version));
    } else {
      sent = SendAck(item.conn->fd, item.ticket, item.conn->version);
    }
    offset += item.count;
    if (!sent.ok()) broken.push_back(item.conn);
  }

  lock.lock();
  counters_.frames_served += items.size();
  counters_.exchanges_served += items.size();
  if (items.size() > 1) {
    ++counters_.fused_batches;
    counters_.fused_frames += items.size();
  }
  for (const auto& c : broken) FailLocked(c);
  for (const auto& c : claimed) {
    c->busy = false;
    ScheduleLocked(c);
  }
}

void StorageService::ScheduleLocked(const std::shared_ptr<Connection>& conn) {
  if (conn->done || conn->busy) return;
  if (!conn->queue.empty()) {
    if (!conn->scheduled) {
      conn->scheduled = true;
      ready_.push_back(conn);
      work_cv_.notify_one();
    }
    return;
  }
  if (conn->reader_done && !conn->scheduled) FinalizeLocked(conn);
}

void StorageService::FinalizeLocked(const std::shared_ptr<Connection>& conn) {
  if (conn->done) return;
  conn->done = true;
  conn->ns = NamespaceHandle();  // detach now; frees private namespaces
  ::close(conn->fd);
  --counters_.connections_active;
  if (counters_.connections_active == 0) drained_cv_.notify_all();
}

void StorageService::FailLocked(const std::shared_ptr<Connection>& conn) {
  if (conn->write_failed || conn->done) return;
  conn->write_failed = true;
  conn->queue.clear();
  // Wake the reader (blocked in read) so the connection can retire.
  ::shutdown(conn->fd, SHUT_RDWR);
}

void StorageService::Drain() {
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::unique_lock<std::mutex> lock(mu_);
    draining_ = true;
    conns = conns_;
    // Stop READING only: queued exchanges still execute and their
    // replies still flow; each connection retires once its queue drains.
    for (const auto& c : conns) {
      if (!c->done) ::shutdown(c->fd, SHUT_RD);
    }
    drained_cv_.wait(lock,
                     [this] { return counters_.connections_active == 0; });
    stopping_ = true;
    conns_.clear();
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  for (const auto& c : conns) {
    if (c->reader.joinable()) c->reader.join();
  }
  // Quiescent now (no readers, no workers, no in-flight exchanges):
  // checkpoint so a clean restart replays nothing. Best-effort — on
  // failure the journal simply remains for the next Open to replay.
  (void)engine_->Checkpoint();
}

StorageServiceCounters StorageService::Counters() const {
  StorageServiceCounters out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = counters_;
  }
  out.engine = engine_->Counters();
  return out;
}

uint64_t ServeStorageConnection(int fd) {
  // A connection-private engine behind the shared dispatch: exactly the
  // PR 5 contract (every byte included), now expressed as the smallest
  // possible StorageService.
  StorageServiceOptions options;
  options.num_threads = 0;  // no pool; serve on the caller's thread
  StorageService service(options);
  return service.ServeBlocking(fd);
}

}  // namespace dpstore
