#include "server/storage_service.h"

#include <unistd.h>

#include <memory>
#include <utility>
#include <vector>

#include "storage/backend.h"
#include "storage/server.h"
#include "storage/wire.h"

namespace dpstore {

namespace {

Status SendError(int fd, const Status& status, uint64_t ticket) {
  return wire::WriteFrame(fd, wire::EncodeReplyError(status, ticket));
}

Status SendAck(int fd, uint64_t ticket) {
  static const BlockBuffer kEmpty;
  return wire::WriteFrame(fd, wire::EncodeReplyBlocks(kEmpty, ticket));
}

/// The dispatch loop proper; returns when the stream ends (EOF, framing
/// error, or write failure). Split out so the caller closes `fd` on every
/// exit path.
void ServeLoop(int fd, uint64_t* exchanges) {
  std::unique_ptr<StorageServer> arena;
  std::vector<uint8_t> scratch;
  for (;;) {
    StatusOr<wire::DecodedFrame> frame = wire::ReadFrame(fd, &scratch);
    if (!frame.ok()) return;  // EOF or unframeable bytes: close.
    const wire::FrameHeader& header = frame->header;
    const uint64_t ticket = header.ticket;
    Status sent = OkStatus();

    if (header.type == wire::FrameType::kOpen) {
      // (Re)build the arena. The geometry is fixed per store, so a
      // connection re-Opening simply starts a fresh zeroed array. The cap
      // check divides rather than multiplies: a forged aux must not be
      // able to wrap the product and size a terminal allocation. Header
      // headroom keeps a full-array reply frame under the cap too.
      if (header.aux == 0 || header.block_size == 0 ||
          header.aux > (wire::kMaxFrameBytes - wire::kHeaderBytes) /
                           header.block_size) {
        sent = SendError(fd, InvalidArgumentError("open: bad geometry"),
                         ticket);
      } else {
        arena = std::make_unique<StorageServer>(header.aux, header.block_size);
        // The remote arena's own transcript is never shipped back (the
        // adversary's view is the client-side transcript); keep it to
        // counters so a long-lived connection cannot grow without bound.
        arena->SetTranscriptCountingOnly(true);
        sent = SendAck(fd, ticket);
      }
    } else if (arena == nullptr) {
      sent = SendError(fd, FailedPreconditionError("frame before open"),
                       ticket);
    } else {
      switch (header.type) {
        case wire::FrameType::kRequest: {
          // The decode only bounded the request frame; the REPLY of a
          // download is count * block_size bytes, and duplicate indices
          // make count independent of n. Cap it (division, no overflow)
          // before the arena sizes an allocation a hostile client chose.
          if (static_cast<StorageRequest::Op>(header.code) ==
                  StorageRequest::Op::kDownload &&
              arena->block_size() > 0 &&
              frame->indices.size() >
                  (wire::kMaxFrameBytes - wire::kHeaderBytes) /
                      arena->block_size()) {
            sent = SendError(
                fd,
                InvalidArgumentError(
                    "download reply would exceed the wire frame cap"),
                ticket);
            break;
          }
          StorageRequest request;
          request.op = static_cast<StorageRequest::Op>(header.code);
          request.indices = std::move(frame->indices);
          request.payload = std::move(frame->payload);
          StatusOr<StorageReply> reply = arena->Exchange(std::move(request));
          ++*exchanges;
          sent = reply.ok()
                     ? wire::WriteFrame(
                           fd, wire::EncodeReplyBlocks(reply->blocks, ticket))
                     : SendError(fd, reply.status(), ticket);
          break;
        }
        case wire::FrameType::kSetArray: {
          Status status = arena->SetArray(frame->payload.ToBlocks());
          sent = status.ok() ? SendAck(fd, ticket)
                             : SendError(fd, status, ticket);
          break;
        }
        case wire::FrameType::kPeek: {
          if (header.aux >= arena->n()) {
            sent = SendError(fd, OutOfRangeError("peek: index out of range"),
                             ticket);
          } else {
            BlockBuffer one(arena->block_size());
            one.Append(arena->PeekBlock(header.aux));
            sent = wire::WriteFrame(fd, wire::EncodeReplyBlocks(one, ticket));
          }
          break;
        }
        case wire::FrameType::kCorrupt: {
          if (header.aux >= arena->n()) {
            sent = SendError(
                fd, OutOfRangeError("corrupt: index out of range"), ticket);
          } else {
            arena->CorruptBlock(header.aux);
            sent = SendAck(fd, ticket);
          }
          break;
        }
        default:
          sent = SendError(
              fd, InvalidArgumentError("unexpected frame type on server"),
              ticket);
          break;
      }
    }
    if (!sent.ok()) return;
  }
}

}  // namespace

uint64_t ServeStorageConnection(int fd) {
  uint64_t exchanges = 0;
  ServeLoop(fd, &exchanges);
  ::close(fd);
  return exchanges;
}

}  // namespace dpstore
