#ifndef DPSTORE_SERVER_STORAGE_SERVICE_H_
#define DPSTORE_SERVER_STORAGE_SERVICE_H_

/// \file
/// Server side of the wire codec: StorageService turns connected sockets
/// into tenants of ONE shared StorageEngine.
///
/// PR 5's ServeStorageConnection owned a private arena per connection on
/// a dedicated thread — structurally single-tenant. The service splits
/// that into three roles:
///
///   * per-connection READERS: thin threads that only decode frames and
///     enqueue work (they never touch storage);
///   * a BOUNDED WORKER POOL (`num_threads`) executing exchanges against
///     the shared engine — server capacity no longer scales threads with
///     connections;
///   * a CROSS-CONNECTION BATCH SCHEDULER: a worker draining one
///     connection's queue also harvests same-direction request frames
///     bound for the SAME namespace from other ready connections and
///     executes them as one fused engine exchange (the FusingBackend
///     idea, applied server-side). Each connection still receives
///     exactly one reply frame per request frame, with its own ticket,
///     in its own request order — the adversary-view invariant is per
///     connection and fusion never changes any client's bytes.
///
/// Shared by the dpstore_server binary and by SocketBackend's in-process
/// fallback (ServeStorageConnection), which serves the same dispatch
/// synchronously from one thread over a socketpair — a test against the
/// fallback exercises byte-for-byte the same codec and execution path as
/// a real TCP deployment.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "storage/engine.h"

namespace dpstore {

struct StorageServiceOptions {
  /// Worker threads executing exchanges (threaded mode). 0 spawns no
  /// pool: only ServeBlocking may be used (the in-process fallback).
  size_t num_threads = 4;
  /// Concurrent-connection cap; HandleConnection refuses (and closes)
  /// beyond it.
  size_t max_conns = 64;
  /// Cross-connection fusion budget: max blocks one fused engine
  /// exchange may carry. 1 disables fusion.
  uint64_t fuse_blocks = 256;
  /// Stripe count for the shared engine's per-namespace locking.
  size_t lock_stripes = 16;
  /// Queue-age load shedding (threaded mode): a kRequest frame that
  /// waited in its connection's queue longer than this many ms is
  /// answered with a DeadlineExceeded error frame instead of executed —
  /// the server-side half of the client's `deadline_ms` budget, applied
  /// where an overloaded server's time actually goes. -1 disables; 0
  /// sheds every queued request (a deterministic test mode). Control
  /// frames (Open/SetArray/Peek/Corrupt) always execute, and the
  /// synchronous ServeBlocking path never queues, so it never sheds.
  int64_t shed_after_ms = -1;
  /// Durability passthrough to the shared engine (--data-dir). With it
  /// set, an upload's ack is only written after its journal record is
  /// fdatasync-durable — and because a fused group executes as ONE engine
  /// exchange, a batch of fused uploads costs one journal record and one
  /// fdatasync (group commit covers concurrent workers too). Use Make()
  /// to observe recovery failures as Status.
  persist::PersistOptions persist;
};

/// Point-in-time accounting (connection/namespace accounting for the
/// server binary's drain report).
struct StorageServiceCounters {
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t connections_rejected = 0;  ///< refused at max_conns
  uint64_t frames_served = 0;         ///< reply frames written
  uint64_t exchanges_served = 0;      ///< kRequest frames answered
  uint64_t fused_batches = 0;         ///< engine calls carrying >1 frame
  uint64_t fused_frames = 0;          ///< request frames that rode fused
  uint64_t frames_shed = 0;  ///< requests answered DeadlineExceeded unexecuted
  StorageEngineCounters engine;
};

class StorageService {
 public:
  /// CHECK-fails if options.persist asks for a data dir that cannot be
  /// recovered; Make() reports that as Status instead.
  explicit StorageService(StorageServiceOptions options = {});
  /// Construction path for persistent deployments: runs crash recovery
  /// (StorageEngine::Open) and surfaces its DataLoss/Internal errors.
  static StatusOr<std::unique_ptr<StorageService>> Make(
      StorageServiceOptions options = {});
  /// Drains (see Drain) and joins every thread.
  ~StorageService();

  StorageService(const StorageService&) = delete;
  StorageService& operator=(const StorageService&) = delete;

  /// Adopts `fd` as a new connection: spawns its reader and serves its
  /// frames from the worker pool. Returns false — closing `fd` — when
  /// draining or at max_conns. Requires num_threads >= 1.
  bool HandleConnection(int fd);

  /// Serves one connection synchronously on the caller's thread against
  /// the shared engine, until EOF or a framing error; closes `fd` on
  /// return. Returns the number of exchange frames served. This is the
  /// PR 5 dispatch loop, now a thin client of the engine.
  uint64_t ServeBlocking(int fd);

  /// Graceful shutdown: refuse new connections, stop reading, finish
  /// every in-flight exchange (replies still flow), close all
  /// connections, park the workers, and — once quiescent — checkpoint
  /// the engine so a clean restart replays nothing. Idempotent.
  void Drain();

  StorageServiceCounters Counters() const;
  StorageEngine& engine() { return *engine_; }

 private:
  struct Connection;

  StorageService(StorageServiceOptions options,
                 std::shared_ptr<StorageEngine> engine);

  void WorkerLoop(unsigned tid);
  void ReaderLoop(std::shared_ptr<Connection> conn);
  /// Executes one connection's head-of-queue group (plus harvested
  /// same-direction requests from other ready connections). mu_ held on
  /// entry and exit, released around engine execution and socket writes.
  void ProcessLocked(unsigned tid, std::unique_lock<std::mutex>& lock,
                     const std::shared_ptr<Connection>& conn);
  /// Marks `conn` ready (or finalizes it) after its queue changed.
  /// Requires mu_.
  void ScheduleLocked(const std::shared_ptr<Connection>& conn);
  /// Closes and retires a connection whose reader stopped and whose
  /// queue drained. Requires mu_.
  void FinalizeLocked(const std::shared_ptr<Connection>& conn);
  /// Marks a connection dead after a reply write failed: drops its queue
  /// and shuts the socket down so its reader stops. Requires mu_.
  void FailLocked(const std::shared_ptr<Connection>& conn);

  const StorageServiceOptions options_;
  std::shared_ptr<StorageEngine> engine_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;     // workers: ready_ / stopping_
  std::condition_variable drained_cv_;  // Drain: connections_active -> 0
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::shared_ptr<Connection>> ready_;
  bool draining_ = false;
  bool stopping_ = false;
  StorageServiceCounters counters_;

  std::vector<std::thread> workers_;
};

/// Compat entry point (SocketBackend's socketpair fallback): serves one
/// connection on the caller's thread against a connection-private
/// engine, exactly the PR 5 contract. Closes `fd`; returns exchange
/// frames served.
uint64_t ServeStorageConnection(int fd);

}  // namespace dpstore

#endif  // DPSTORE_SERVER_STORAGE_SERVICE_H_
