#ifndef DPSTORE_SERVER_STORAGE_SERVICE_H_
#define DPSTORE_SERVER_STORAGE_SERVICE_H_

/// \file
/// Server side of the wire codec: the dispatch loop that turns one
/// connected socket into a remote StorageServer arena.
///
/// Shared by the dpstore_server binary (src/server/dpstore_server_main.cc)
/// and by SocketBackend's in-process fallback, which serves the same loop
/// from a thread over a socketpair — so a test that runs against the
/// fallback exercises byte-for-byte the same codec and dispatch as a real
/// TCP deployment.

#include <cstdint>

namespace dpstore {

/// Serves one client connection on `fd` until the peer closes it (or a
/// framing error makes the stream untrustworthy). Protocol: the first
/// frame must be kOpen carrying the array geometry (n, block_size); the
/// service builds a private StorageServer arena for the connection and
/// then answers kRequest / kSetArray / kPeek / kCorrupt frames until EOF.
/// Every request frame gets exactly one reply frame with the same ticket,
/// in request order. Malformed exchanges answer with error frames;
/// undecodable bytes close the connection (framing cannot be resynced).
///
/// Owns nothing beyond the per-connection arena; closes `fd` on return.
/// Returns the number of exchange frames served (for logging/tests).
uint64_t ServeStorageConnection(int fd);

}  // namespace dpstore

#endif  // DPSTORE_SERVER_STORAGE_SERVICE_H_
