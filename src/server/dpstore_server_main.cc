// dpstore_server: a standalone storage server process speaking the wire
// codec (storage/wire.h, spec in docs/wire-format.md) over a Unix-domain
// or TCP socket. All connections are tenants of ONE shared StorageEngine
// (each bound to the namespace its Open frame names — private by
// default, shared by id), served by a bounded worker pool instead of a
// thread per connection.
//
// Usage:
//   dpstore_server --unix /tmp/dpstore.sock [--threads N] [--max-conns N]
//   dpstore_server --port 47777 [--host 127.0.0.1] [--threads N] ...
//   ... [--data-dir /var/lib/dpstore]   # durable shared namespaces
//
// With --data-dir, shared namespaces live in mmap-backed arena files with
// a write-ahead journal (docs/persistence.md): startup recovers whatever
// a previous process — cleanly drained or SIGKILLed mid-write — left
// there, and prints a "recovered" line CI and the crash suite grep for.
//
// Prints one "dpstore_server: listening on ..." line to stdout when ready
// (CI waits for it), then serves until SIGINT/SIGTERM — on which it stops
// accepting, finishes every in-flight exchange, prints the
// connection/namespace accounting, and exits 0.

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/storage_service.h"

namespace {

volatile sig_atomic_t g_stop = 0;
volatile int g_listen_fd = -1;

// SIGINT/SIGTERM: flag the drain and wake the accept loop. shutdown() on
// the listening socket makes the blocked accept() return immediately.
void HandleStopSignal(int /*signo*/) {
  g_stop = 1;
  const int fd = g_listen_fd;
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void PrintUsage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s --unix <path> | --port <port> [--host <addr>]\n"
               "          [--threads <n>] [--max-conns <n>]\n"
               "\n"
               "  --unix <path>    listen on a Unix-domain socket\n"
               "  --port <port>    listen on TCP (with --host, default "
               "127.0.0.1)\n"
               "  --threads <n>    storage worker threads (default 4)\n"
               "  --max-conns <n>  concurrent connection cap (default 64;\n"
               "                   also sizes the listen backlog)\n"
               "  --data-dir <d>   persist shared namespaces under <d>\n"
               "                   (mmap arenas + write-ahead journal;\n"
               "                   recovers on startup, checkpoints on "
               "drain)\n"
               "  --shed-after-ms <n>  answer requests queued longer than\n"
               "                   <n> ms with DEADLINE_EXCEEDED instead of\n"
               "                   executing them (0 sheds everything "
               "queued;\n"
               "                   default: shedding off)\n"
               "  --help           print this help and exit\n",
               argv0);
}

int Usage(const char* argv0) {
  PrintUsage(stderr, argv0);
  return 2;
}

int ListenUnix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "dpstore_server: socket path too long: %s\n",
                 path.c_str());
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // stale socket from a previous run
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0 ||
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    std::perror("dpstore_server: unix listen");
    if (fd >= 0) ::close(fd);
    return -1;
  }
  return fd;
}

int ListenTcp(const std::string& host, uint16_t port, int backlog) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "dpstore_server: bad --host %s\n", host.c_str());
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("dpstore_server: socket");
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    std::perror("dpstore_server: tcp listen");
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Parses a positive integer flag value; returns -1 on garbage.
long ParseCount(const char* text) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value <= 0) return -1;
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  std::string unix_path;
  std::string host = "127.0.0.1";
  std::string data_dir;
  int port = -1;
  long threads = 4;
  long max_conns = 64;
  long shed_after_ms = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout, argv[0]);
      return 0;
    } else if (arg == "--unix" && i + 1 < argc) {
      unix_path = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = ParseCount(argv[++i]);
      if (threads < 0) return Usage(argv[0]);
    } else if (arg == "--max-conns" && i + 1 < argc) {
      max_conns = ParseCount(argv[++i]);
      if (max_conns < 0) return Usage(argv[0]);
    } else if (arg == "--data-dir" && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (arg == "--shed-after-ms" && i + 1 < argc) {
      // 0 is meaningful here (shed every queued request), so ParseCount's
      // positive-only contract doesn't fit.
      char* end = nullptr;
      shed_after_ms = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || shed_after_ms < 0) {
        return Usage(argv[0]);
      }
    } else {
      // Unknown flag (or a flag missing its value): refuse loudly rather
      // than silently serving with a misconfiguration.
      std::fprintf(stderr, "dpstore_server: unknown argument: %s\n",
                   arg.c_str());
      return Usage(argv[0]);
    }
  }
  // Exactly one of --unix / --port.
  if (unix_path.empty() == (port < 0)) return Usage(argv[0]);

  // The kernel clamps to SOMAXCONN anyway; clamping ourselves keeps the
  // number honest in the log. A full backlog means clients see ECONNREFUSED
  // instead of silently queueing behind a cap we would reject anyway.
  const int backlog =
      static_cast<int>(std::min<long>(max_conns, SOMAXCONN));
  int listen_fd = -1;
  std::string where;
  if (!unix_path.empty()) {
    listen_fd = ListenUnix(unix_path, backlog);
    where = "unix:" + unix_path;
  } else {
    if (port <= 0 || port > 65535) return Usage(argv[0]);
    listen_fd = ListenTcp(host, static_cast<uint16_t>(port), backlog);
    where = host + ":" + std::to_string(port);
  }
  if (listen_fd < 0) return 1;

  g_listen_fd = listen_fd;
  struct sigaction action {};
  action.sa_handler = HandleStopSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // broken clients surface as write errors

  dpstore::StorageServiceOptions options;
  options.num_threads = static_cast<size_t>(threads);
  options.max_conns = static_cast<size_t>(max_conns);
  options.persist.data_dir = data_dir;
  options.shed_after_ms = shed_after_ms;
  dpstore::StatusOr<std::unique_ptr<dpstore::StorageService>> made =
      dpstore::StorageService::Make(options);
  if (!made.ok()) {
    // Typically DataLoss from a corrupt journal/arena: refuse to serve
    // rather than invent state the clients never wrote.
    std::fprintf(stderr, "dpstore_server: recovery failed: %s\n",
                 made.status().message().c_str());
    ::close(listen_fd);
    if (!unix_path.empty()) ::unlink(unix_path.c_str());
    return 1;
  }
  dpstore::StorageService& service = **made;

  if (!data_dir.empty()) {
    const dpstore::StorageServiceCounters at_start = service.Counters();
    std::printf("dpstore_server: recovered %" PRIu64 " namespace(s), %" PRIu64
                " journal record(s) from %s\n",
                at_start.engine.persist.recovered_namespaces,
                at_start.engine.persist.recovered_records, data_dir.c_str());
  }
  std::printf("dpstore_server: listening on %s (threads=%ld max-conns=%ld)\n",
              where.c_str(), threads, max_conns);
  std::fflush(stdout);

  while (g_stop == 0) {
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (g_stop != 0) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // Log and keep serving on transient resource exhaustion; anything
      // else is a programming or environment error worth dying loudly on.
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        std::fprintf(stderr, "dpstore_server: accept: %s (retrying)\n",
                     std::strerror(errno));
        continue;
      }
      std::perror("dpstore_server: accept");
      break;
    }
    if (!service.HandleConnection(conn)) {
      std::fprintf(stderr,
                   "dpstore_server: refused connection (at --max-conns or "
                   "draining)\n");
    }
  }

  // Graceful drain: stop accepting, finish in-flight exchanges, report.
  ::close(listen_fd);
  if (!unix_path.empty()) ::unlink(unix_path.c_str());
  service.Drain();
  const dpstore::StorageServiceCounters counters = service.Counters();
  std::printf(
      "dpstore_server: drained: conns accepted=%" PRIu64 " rejected=%" PRIu64
      " | frames=%" PRIu64 " exchanges=%" PRIu64 " (fused %" PRIu64
      " in %" PRIu64 " batches, shed %" PRIu64 ") | namespaces live=%" PRIu64
      " created=%" PRIu64 " | blocks moved=%" PRIu64 "\n",
      counters.connections_accepted, counters.connections_rejected,
      counters.frames_served, counters.exchanges_served,
      counters.fused_frames, counters.fused_batches, counters.frames_shed,
      counters.engine.namespaces, counters.engine.namespaces_created,
      counters.engine.blocks_moved);
  if (!data_dir.empty()) {
    const dpstore::persist::PersistCounters& p = counters.engine.persist;
    std::printf("dpstore_server: durability: journal appends=%" PRIu64
                " bytes=%" PRIu64 " | fsyncs=%" PRIu64 " (riders %" PRIu64
                ") | segments rotated=%" PRIu64 " checkpoints=%" PRIu64 "\n",
                p.journal_appends, p.journal_bytes, p.fsyncs,
                p.group_commit_riders, p.segments_rotated, p.checkpoints);
  }
  std::fflush(stdout);
  return 0;
}
