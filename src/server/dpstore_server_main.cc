// dpstore_server: a standalone storage server process speaking the wire
// codec (storage/wire.h, spec in docs/wire-format.md) over a Unix-domain
// or TCP socket. Each accepted connection gets its own StorageServer arena
// (geometry fixed by the client's Open frame) and is served on its own
// thread until the client disconnects, so independent clients — replicas
// of a multi-server scheme, parallel test shards — never share state.
//
// Usage:
//   dpstore_server --unix /tmp/dpstore.sock
//   dpstore_server --port 47777 [--host 127.0.0.1]
//
// Prints one "dpstore_server: listening on ..." line to stdout when ready
// (CI waits for it), then serves until killed.

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "server/storage_service.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --unix <path> | --port <port> [--host <addr>]\n",
               argv0);
  return 2;
}

int ListenUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "dpstore_server: socket path too long: %s\n",
                 path.c_str());
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // stale socket from a previous run
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0 ||
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    std::perror("dpstore_server: unix listen");
    if (fd >= 0) ::close(fd);
    return -1;
  }
  return fd;
}

int ListenTcp(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "dpstore_server: bad --host %s\n", host.c_str());
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("dpstore_server: socket");
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    std::perror("dpstore_server: tcp listen");
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--unix" && i + 1 < argc) {
      unix_path = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }
  // Exactly one of --unix / --port.
  if (unix_path.empty() == (port < 0)) return Usage(argv[0]);

  int listen_fd = -1;
  std::string where;
  if (!unix_path.empty()) {
    listen_fd = ListenUnix(unix_path);
    where = "unix:" + unix_path;
  } else {
    if (port <= 0 || port > 65535) return Usage(argv[0]);
    listen_fd = ListenTcp(host, static_cast<uint16_t>(port));
    where = host + ":" + std::to_string(port);
  }
  if (listen_fd < 0) return 1;

  std::printf("dpstore_server: listening on %s\n", where.c_str());
  std::fflush(stdout);

  for (;;) {
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      std::perror("dpstore_server: accept");
      break;
    }
    // One thread per connection; ServeStorageConnection closes the fd.
    std::thread([conn] { dpstore::ServeStorageConnection(conn); }).detach();
  }
  ::close(listen_fd);
  return 0;
}
