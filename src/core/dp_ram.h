#ifndef DPSTORE_CORE_DP_RAM_H_
#define DPSTORE_CORE_DP_RAM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/scheme.h"
#include "crypto/cipher.h"
#include "storage/backend.h"
#include "storage/stash.h"
#include "util/random.h"
#include "util/statusor.h"

namespace dpstore {

/// Options for the Section 6 DP-RAM (Algorithms 2-3).
struct DpRamOptions {
  /// Independent probability p that a record enters the client stash per
  /// setup / per overwrite phase. The paper requires p <= Phi(n)/n for
  /// Phi(n) = omega(log n); DefaultStashProbability() below computes that.
  /// Larger p means a bigger stash and (by Lemmas 6.4/6.5, bounds ~ n/p)
  /// a smaller privacy budget.
  double stash_probability = 0.0;
  /// Seed for the scheme's coins (stash draws, dummy indices).
  uint64_t seed = 1234;
  /// When false, the scheme runs the paper's retrieval-only mode: the
  /// database is stored in plaintext, Write() is rejected, and the
  /// overwrite phase is skipped entirely. This variant needs no
  /// computational assumptions (Section 6, "Discussion about encryption").
  bool encrypted = true;
  /// Storage behind the scheme; null means an in-memory StorageServer.
  BackendFactory backend_factory = nullptr;
};

/// Returns the paper's default p = Phi(n)/n with Phi(n) = ceil(log2(n)^1.5)
/// (any omega(log n) function works; this one keeps the stash tiny while
/// satisfying Lemma D.1's negligible-overflow requirement).
double DefaultStashProbability(uint64_t n);

/// Differentially private RAM (Section 6, Algorithms 2-3).
///
/// Server state: array A of n ciphertexts (or plaintexts in retrieval-only
/// mode). Client state: decryption key + a stash holding each record
/// independently with probability p.
///
/// Each query makes exactly 2 downloads and 1 upload (3 block operations,
/// 1 roundtrip), independent of n - the O(1) overhead of Theorem 6.1 - and
/// achieves eps = O(log n) (see DpRamEpsilonUpperBound):
///
///  * download phase - if the record is stashed, download a uniformly random
///    array slot as a dummy and serve from the stash; otherwise download the
///    record's slot.
///  * overwrite phase - with probability p put the (possibly updated) record
///    into the stash and re-randomize a uniformly random slot (download,
///    re-encrypt, upload); otherwise write the record back to its own slot
///    (download-and-discard, then upload a fresh ciphertext).
///
/// Both downloads of a query are issued as one batched exchange, so the
/// whole query is a single roundtrip plus a fire-and-forget write-back.
class DpRam : public RamScheme {
 public:
  /// Builds the client and an internally owned server for `database`
  /// (record sizes must all match). This is the paper's Setup: uploads
  /// Enc(K, B_i) for all i and populates the stash.
  DpRam(std::vector<Block> database, DpRamOptions options);

  /// Retrieves the current version of record `index`.
  StatusOr<Block> Read(BlockId index);

  /// Overwrites record `index` with `value` (same size as setup records).
  /// Rejected (FailedPrecondition) in retrieval-only mode.
  Status Write(BlockId index, Block value);

  uint64_t n() const override { return n_; }
  size_t record_size() const override { return record_size_; }

  // RamScheme interface. Through the unified surface, retrieval-only mode
  // reports the standard "no write repertoire" (Unimplemented) like every
  // other read-only scheme; the direct Write() keeps its sharper
  // FailedPrecondition diagnosis.
  StatusOr<std::optional<Block>> QueryRead(BlockId id) override;
  Status QueryWrite(BlockId id, Block value) override {
    if (!options_.encrypted) {
      return UnimplementedError(
          "retrieval-only DP-RAM has no write repertoire");
    }
    return Write(id, std::move(value));
  }
  bool SupportsWrite() const override { return options_.encrypted; }
  TransportStats TransportTotals() const override { return server_->Stats(); }

  double stash_probability() const { return options_.stash_probability; }
  size_t stash_size() const { return stash_.size(); }
  size_t stash_peak_size() const { return stash_.peak_size(); }
  /// eps upper bound for this configuration (Theorem 6.1 wrap-up).
  double epsilon_upper_bound() const;
  /// Exactly 3 in read-write mode; 1 or 2 in retrieval-only mode.
  double BlocksPerQueryExpected() const;

  /// The untrusted storage backend, exposing the adversarial transcript
  /// and supporting fault injection in tests.
  StorageBackend& server() { return *server_; }
  const StorageBackend& server() const { return *server_; }

 private:
  enum class Op { kRead, kWrite };

  StatusOr<Block> Query(BlockId index, Op op, const Block* new_value);

  Status UploadRecord(BlockId index, BlockView record);
  StatusOr<Block> DecodeRecord(Block server_block) const;

  uint64_t n_;
  size_t record_size_;
  DpRamOptions options_;
  std::unique_ptr<StorageBackend> server_;
  std::unique_ptr<crypto::Cipher> cipher_;  // null in retrieval-only mode
  Stash stash_;
  Rng rng_;
};

}  // namespace dpstore

#endif  // DPSTORE_CORE_DP_RAM_H_
