#include "core/dp_ir.h"

#include <algorithm>

namespace dpstore {

DpIr::DpIr(StorageBackend* server, DpIrOptions options)
    : server_(server), options_(options), rng_(options.seed) {
  DPSTORE_CHECK(server != nullptr);
  DPSTORE_CHECK_GE(options_.epsilon, 0.0);
  DPSTORE_CHECK_GE(options_.alpha, 0.0);
  DPSTORE_CHECK_LT(options_.alpha, 1.0);
  errorless_ = options_.alpha == 0.0;
  if (errorless_) {
    // Theorem 3.3: an errorless DP-IR must touch (1 - delta) n blocks no
    // matter the budget; the only errorless instantiation is the full scan.
    k_ = server_->n();
  } else if (options_.use_pseudocode_constant) {
    k_ = DpIrBlocksPerQueryPseudocode(server_->n(), options_.epsilon,
                                      options_.alpha);
  } else {
    k_ = DpIrBlocksPerQuery(server_->n(), options_.epsilon, options_.alpha);
  }
}

double DpIr::achieved_epsilon() const {
  if (errorless_) return 0.0;  // full scan: transcript independent of query
  return DpIrAchievedEpsilon(server_->n(), k_, options_.alpha);
}

StatusOr<std::optional<Block>> DpIr::Query(BlockId index) {
  const uint64_t n = server_->n();
  if (index >= n) return OutOfRangeError("DpIr::Query index out of range");
  server_->BeginQuery();

  // Algorithm 1: with probability alpha take the error branch (the download
  // set is a uniform K-subset not conditioned on `index`).
  const bool error_branch = !errorless_ && rng_.Bernoulli(options_.alpha);

  std::vector<uint64_t> download_set;
  if (error_branch) {
    download_set = rng_.SampleDistinct(k_, n);
  } else if (k_ >= n) {
    download_set.resize(n);
    for (uint64_t i = 0; i < n; ++i) download_set[i] = i;
  } else {
    download_set = rng_.SampleDistinctExcluding(k_ - 1, n, index);
    download_set.push_back(index);
  }
  // The privacy analysis treats the transcript as a set; shuffle so the
  // download order cannot leak which element was the real query.
  rng_.Shuffle(&download_set);

  // One batched exchange: K blocks, a single roundtrip.
  DPSTORE_ASSIGN_OR_RETURN(std::vector<Block> blocks,
                           server_->DownloadMany(download_set));
  if (error_branch) return std::optional<Block>();
  std::optional<Block> result;
  for (size_t i = 0; i < download_set.size(); ++i) {
    if (download_set[i] == index) result = std::move(blocks[i]);
  }
  DPSTORE_CHECK(result.has_value());
  return result;
}

}  // namespace dpstore
