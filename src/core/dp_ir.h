#ifndef DPSTORE_CORE_DP_IR_H_
#define DPSTORE_CORE_DP_IR_H_

#include <cstdint>
#include <optional>

#include "core/dp_params.h"
#include "core/scheme.h"
#include "storage/backend.h"
#include "util/random.h"
#include "util/statusor.h"

namespace dpstore {

/// Options for the Section 5 / Algorithm 1 DP-IR scheme.
struct DpIrOptions {
  /// Pure differential privacy budget (eps >= 0). eps = Theta(log n) gives
  /// constant overhead (Theorem 5.1); eps = 0 degenerates to downloading
  /// the whole database (Theorem 3.3 floor).
  double epsilon = 0.0;
  /// Error probability in (0, 1): with probability alpha the query
  /// deliberately downloads only dummies and returns nothing. alpha = 0 is
  /// allowed but forces K = n (errorless lower bound).
  double alpha = 0.1;
  /// Seed for the scheme's internal coins.
  uint64_t seed = 42;
  /// E12 ablation: use the Appendix G pseudocode constant for K instead of
  /// the proof-consistent one (see DpIrBlocksPerQuery).
  bool use_pseudocode_constant = false;
};

/// Differentially private information retrieval (Section 5, Algorithm 1).
///
/// IR is stateless on both sides: the server stores the public plaintext
/// database; the client keeps no state between queries (the Rng only feeds
/// the per-query coins, which the definition permits as "internal
/// randomness"). A query downloads a uniformly random K-subset of [n] that,
/// with probability 1 - alpha, is conditioned to contain the requested
/// index; with probability alpha it is an unconditioned random subset and
/// the query errors (returns nullopt, the paper's perp).
///
/// Privacy: pure eps-DP with eps = ln(1 + (1-alpha) n / (alpha K))
/// (Theorem 5.1); the transcript is the *set* of downloaded indices, so the
/// implementation shuffles the download order to avoid leaking which element
/// was real through position.
///
/// The K-subset is fetched as one batched download, so every query is a
/// single roundtrip.
class DpIr : public RamScheme {
 public:
  /// `server` must outlive this object and hold the public database.
  DpIr(StorageBackend* server, DpIrOptions options);

  /// Retrieves block `index`, or nullopt when the scheme's alpha-coin chose
  /// the error branch. Errors (OutOfRange etc.) are propagated.
  StatusOr<std::optional<Block>> Query(BlockId index);

  // RamScheme interface (read-only repertoire).
  uint64_t n() const override { return server_->n(); }
  size_t record_size() const override { return server_->block_size(); }
  StatusOr<std::optional<Block>> QueryRead(BlockId id) override {
    return Query(id);
  }
  TransportStats TransportTotals() const override { return server_->Stats(); }

  /// Download-set size per query.
  uint64_t k() const { return k_; }
  /// The exact pure-DP budget this configuration achieves.
  double achieved_epsilon() const;
  const DpIrOptions& options() const { return options_; }

 private:
  StorageBackend* server_;
  DpIrOptions options_;
  uint64_t k_;
  bool errorless_;
  Rng rng_;
};

}  // namespace dpstore

#endif  // DPSTORE_CORE_DP_IR_H_
