#include "core/privacy_accountant.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace dpstore {

PrivacyAccountant::PrivacyAccountant(double epsilon_limit, double delta_limit)
    : epsilon_limit_(epsilon_limit), delta_limit_(delta_limit) {}

bool PrivacyAccountant::Spend(double epsilon, double delta) {
  DPSTORE_CHECK_GE(epsilon, 0.0);
  DPSTORE_CHECK_GE(delta, 0.0);
  if (epsilon_limit_ > 0.0 && total_epsilon_ + epsilon > epsilon_limit_) {
    return false;
  }
  if (delta_limit_ > 0.0 && total_delta_ + delta > delta_limit_) {
    return false;
  }
  total_epsilon_ += epsilon;
  total_delta_ += delta;
  ++operations_;
  return true;
}

double PrivacyAccountant::epsilon_remaining() const {
  if (epsilon_limit_ <= 0.0) return std::numeric_limits<double>::infinity();
  double remaining = epsilon_limit_ - total_epsilon_;
  return remaining > 0.0 ? remaining : 0.0;
}

double PrivacyAccountant::GroupEpsilon(double per_query_epsilon,
                                       uint64_t hamming_k) {
  return per_query_epsilon * static_cast<double>(hamming_k);
}

double PrivacyAccountant::GroupDelta(double per_query_epsilon,
                                     double per_query_delta,
                                     uint64_t hamming_k) {
  if (hamming_k == 0) return 0.0;
  // delta_k = delta * sum_{i<k} e^{i eps} = delta * (e^{k eps}-1)/(e^eps-1).
  double e = per_query_epsilon;
  if (e == 0.0) return per_query_delta * static_cast<double>(hamming_k);
  return per_query_delta * std::expm1(static_cast<double>(hamming_k) * e) /
         std::expm1(e);
}

void PrivacyAccountant::Reset() {
  total_epsilon_ = 0.0;
  total_delta_ = 0.0;
  operations_ = 0;
}

}  // namespace dpstore
