#include "core/scheme.h"

namespace dpstore {

Status RamScheme::QueryWrite(BlockId id, Block value) {
  (void)id;
  (void)value;
  return UnimplementedError("scheme is read-only (no write repertoire)");
}

Status KvsScheme::Erase(Key key) {
  (void)key;
  return UnimplementedError("scheme has no erase repertoire");
}

}  // namespace dpstore
