#ifndef DPSTORE_CORE_PRIVACY_ACCOUNTANT_H_
#define DPSTORE_CORE_PRIVACY_ACCOUNTANT_H_

#include <cstdint>

namespace dpstore {

/// Tracks cumulative differential-privacy spend across operations.
///
/// The paper's Definition 2.1 protects *adjacent* query sequences (Hamming
/// distance 1): one swapped query costs the scheme's per-query budget once.
/// Deployments usually care about richer adversarial hypotheses - "these k
/// queries differ" (group privacy: k * eps by the Hamming-distance bound of
/// Lemma 3.5) or "each operation composes with independent mechanisms"
/// (basic composition: budgets add). This accountant implements both
/// ledgers so applications can enforce a budget ceiling.
class PrivacyAccountant {
 public:
  /// `epsilon_limit` <= 0 means unlimited.
  explicit PrivacyAccountant(double epsilon_limit = 0.0,
                             double delta_limit = 0.0);

  /// Records one mechanism invocation at (epsilon, delta). Returns false
  /// (and does not record) if doing so would exceed a configured limit.
  bool Spend(double epsilon, double delta = 0.0);

  /// Basic sequential composition over everything recorded.
  double total_epsilon() const { return total_epsilon_; }
  double total_delta() const { return total_delta_; }
  uint64_t operations() const { return operations_; }

  double epsilon_remaining() const;
  bool limited() const { return epsilon_limit_ > 0.0; }

  /// Group privacy (Lemma 3.5 shape): protecting sequences at Hamming
  /// distance k under a per-query budget eps costs k * eps.
  static double GroupEpsilon(double per_query_epsilon, uint64_t hamming_k);

  /// Approximate-DP group privacy: delta scales by k * e^{(k-1) eps}.
  static double GroupDelta(double per_query_epsilon, double per_query_delta,
                           uint64_t hamming_k);

  void Reset();

 private:
  double epsilon_limit_;
  double delta_limit_;
  double total_epsilon_ = 0.0;
  double total_delta_ = 0.0;
  uint64_t operations_ = 0;
};

}  // namespace dpstore

#endif  // DPSTORE_CORE_PRIVACY_ACCOUNTANT_H_
