#ifndef DPSTORE_CORE_MULTI_SERVER_DP_IR_H_
#define DPSTORE_CORE_MULTI_SERVER_DP_IR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/scheme.h"
#include "storage/backend.h"
#include "util/random.h"
#include "util/statusor.h"

namespace dpstore {

/// Options for the multi-server DP-IR (Appendix C setting).
struct MultiServerDpIrOptions {
  /// Number of non-colluding replica servers D >= 2.
  uint64_t num_servers = 2;
  /// Per-corrupted-server privacy budget; determines the per-server
  /// download-set size K (see below).
  double epsilon = 0.0;
  /// Error probability: with probability alpha no server receives the real
  /// index and the query returns nullopt.
  double alpha = 0.1;
  uint64_t seed = 2024;
  /// Retrieve the real block through a two-server DPF eval pair
  /// (crypto/dpf.h) instead of planting the index into one replica's
  /// subset. The K-subsets remain — now ALL dummies, pure cover traffic
  /// whose shape is index-independent by construction — and the real
  /// record rides on two O(lambda log n) keys and one aggregate block per
  /// replica. Requires exactly 2 servers. The alpha error branch is
  /// preserved (the eval still runs, keyed to a uniform dummy point, so
  /// both branches produce bit-identical transcript shapes).
  bool use_dpf = false;
};

/// Multi-server differentially private IR in the Appendix C model: the
/// public database is replicated across D servers; an adversary corrupts a
/// t-fraction of them and sees only their transcripts.
///
/// Construction (Toledo et al.-style plausible deniability [49]): each query
/// sends every server a uniformly random K-subset of [n]; with probability
/// 1 - alpha the real index is additionally planted into the subset of one
/// uniformly chosen server. For a corrupted server, the worst-case event
/// between adjacent queries i / j is the joint membership pattern
/// (B_i in T, B_j not in T), whose likelihood ratio is exactly
/// 1 + (1-alpha) n / (K (D - (1-alpha))) - the planting probability
/// (1-alpha)/D against the dummy-coverage floor (1-(1-alpha)/D) K/n. The
/// per-server budget is the log of that, and the total expected work D*K
/// matches the Theorem C.1 lower bound shape
/// Omega(((1-alpha) t - delta) n / e^eps) up to constants for constant t.
class MultiServerDpIr : public RamScheme {
 public:
  /// `servers` are replicas holding identical public databases; they must
  /// outlive this object and all have equal n. The protocol runs over the
  /// first `options.num_servers` of them; any extras are failover SPARES.
  /// When an active replica's exchange fails, the query fails atomically
  /// (no partial answer), the dead slot is swapped for the next spare, and
  /// the caller's retry re-runs query generation — fresh subsets and
  /// masks from rng_, never a byte-identical resend.
  MultiServerDpIr(std::vector<StorageBackend*> servers,
                  MultiServerDpIrOptions options);

  /// Retrieves block `index`, or nullopt on the alpha error branch.
  StatusOr<std::optional<Block>> Query(BlockId index);

  // RamScheme interface (read-only repertoire). Transport totals sum over
  // every replica; each replica's K-subset is one batched download, so a
  // query costs D roundtrips in total (1 per replica, issued in parallel).
  uint64_t n() const override { return n_; }
  size_t record_size() const override { return servers_[0]->block_size(); }
  StatusOr<std::optional<Block>> QueryRead(BlockId id) override {
    return Query(id);
  }
  TransportStats TransportTotals() const override;

  /// Per-server download-set size
  /// K = ceil((1-alpha) n / ((e^eps - 1)(D - (1-alpha)))), clamped to
  /// [1, n].
  uint64_t k() const { return k_; }
  /// Protocol width D (active replicas per query), not the endpoint count.
  uint64_t num_servers() const { return active_.size(); }
  /// Endpoints handed in, including unused spares.
  uint64_t replica_count() const { return servers_.size(); }
  /// Exact per-corrupted-server budget for the configured K.
  double achieved_epsilon() const;

  /// Completed reconfigurations (dead slot swapped for a spare).
  uint64_t failovers() const { return failovers_; }
  /// Human-readable reconfiguration record, one entry per failed slot.
  const std::vector<std::string>& failover_log() const {
    return failover_log_;
  }

 private:
  /// The use_dpf retrieval path: all-dummy cover subsets + one DPF eval
  /// per replica, XOR of the two aggregate blocks = the real record.
  StatusOr<std::optional<Block>> QueryDpf(BlockId index);

  /// Swaps active slot `slot` for the next spare (if any), logging it.
  void FailoverSlot(uint64_t slot, const Status& why);
  StorageBackend* ActiveServer(uint64_t slot) { return servers_[active_[slot]]; }

  std::vector<StorageBackend*> servers_;
  MultiServerDpIrOptions options_;
  /// Indices into servers_ of the D live replicas, then the spares.
  std::vector<size_t> active_;
  std::vector<size_t> spares_;
  std::vector<std::string> failover_log_;
  uint64_t failovers_ = 0;
  uint64_t queries_ = 0;
  uint64_t n_;
  uint64_t k_;
  Rng rng_;
};

}  // namespace dpstore

#endif  // DPSTORE_CORE_MULTI_SERVER_DP_IR_H_
