#include "core/dp_params.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dpstore {

namespace {

uint64_t ClampK(double k, uint64_t n) {
  if (!(k > 0.0)) return 1;
  if (k >= static_cast<double>(n)) return n;
  return static_cast<uint64_t>(std::ceil(k));
}

}  // namespace

uint64_t DpIrBlocksPerQuery(uint64_t n, double epsilon, double alpha) {
  DPSTORE_CHECK_GT(n, 0u);
  DPSTORE_CHECK_GT(alpha, 0.0) << "Algorithm 1 requires alpha > 0";
  DPSTORE_CHECK_LT(alpha, 1.0);
  DPSTORE_CHECK_GE(epsilon, 0.0);
  double denom = alpha * std::expm1(epsilon);
  if (denom <= 0.0) return n;  // eps = 0 forces the full database
  return ClampK((1.0 - alpha) * static_cast<double>(n) / denom, n);
}

uint64_t DpIrBlocksPerQueryPseudocode(uint64_t n, double epsilon,
                                      double alpha) {
  DPSTORE_CHECK_GT(n, 0u);
  DPSTORE_CHECK_GT(alpha, 0.0);
  DPSTORE_CHECK_LT(alpha, 1.0);
  double denom = std::expm1(epsilon);
  if (denom <= 0.0) return n;
  return ClampK((1.0 - alpha) * static_cast<double>(n) / denom, n);
}

double DpIrAchievedEpsilon(uint64_t n, uint64_t k, double alpha) {
  DPSTORE_CHECK_GT(k, 0u);
  DPSTORE_CHECK_GT(alpha, 0.0);
  return std::log1p((1.0 - alpha) * static_cast<double>(n) /
                    (alpha * static_cast<double>(k)));
}

double DpIrErrorlessLowerBound(uint64_t n, double delta) {
  return std::max(0.0, (1.0 - delta) * static_cast<double>(n));
}

double DpIrLowerBound(uint64_t n, double epsilon, double alpha, double delta) {
  if (n == 0) return 0.0;
  double numer = (1.0 - alpha - delta) * static_cast<double>(n - 1);
  return std::max(0.0, numer / std::exp(epsilon));
}

double DpRamLowerBound(uint64_t n, double epsilon, double alpha, uint64_t c) {
  DPSTORE_CHECK_GE(c, 2u) << "log_c needs c >= 2";
  double inner = (1.0 - alpha) * static_cast<double>(n) / std::exp(epsilon);
  if (inner <= 1.0) return 0.0;
  return std::log(inner) / std::log(static_cast<double>(c));
}

double DpRamEpsilonUpperBound(uint64_t n, double p) {
  DPSTORE_CHECK_GT(p, 0.0);
  DPSTORE_CHECK_LE(p, 1.0);
  double dn = static_cast<double>(n);
  // Three divergent positions (Lemma 6.7); each contributes at most
  // (n^2/p) * (n/p) across Lemmas 6.4 and 6.5.
  return 3.0 * (std::log(dn * dn / p) + std::log(dn / p));
}

double DpRamMinEpsilonForOverhead(uint64_t n, double overhead, double alpha,
                                  uint64_t c) {
  DPSTORE_CHECK_GE(c, 2u);
  double eps = std::log((1.0 - alpha) * static_cast<double>(n)) -
               overhead * std::log(static_cast<double>(c));
  return std::max(0.0, eps);
}

double MultiServerDpIrLowerBound(uint64_t n, double epsilon, double alpha,
                                 double delta, double t) {
  if (n == 0) return 0.0;
  double numer = ((1.0 - alpha) * t - delta) * static_cast<double>(n - 1);
  return std::max(0.0, numer / std::exp(epsilon));
}

double ComposeEpsilon(double epsilon, uint64_t k) {
  return epsilon * static_cast<double>(k);
}

double StrawmanDeltaFloor(uint64_t n) {
  DPSTORE_CHECK_GT(n, 0u);
  return static_cast<double>(n - 1) / static_cast<double>(n);
}

}  // namespace dpstore
