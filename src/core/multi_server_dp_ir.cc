#include "core/multi_server_dp_ir.h"

#include <cmath>
#include <string>
#include <utility>

#include "crypto/dpf.h"
#include "storage/kernels.h"

namespace dpstore {

namespace {

uint8_t DomainDepthFor(uint64_t n) {
  uint8_t depth = 1;
  while ((uint64_t{1} << depth) < n) ++depth;
  return depth;
}

}  // namespace

MultiServerDpIr::MultiServerDpIr(std::vector<StorageBackend*> servers,
                                 MultiServerDpIrOptions options)
    : servers_(std::move(servers)), options_(options), rng_(options.seed) {
  DPSTORE_CHECK_GE(options_.num_servers, 2u);
  DPSTORE_CHECK_GE(servers_.size(), options_.num_servers)
      << "need at least num_servers endpoints (extras are spares)";
  n_ = servers_[0]->n();
  for (StorageBackend* s : servers_) {
    DPSTORE_CHECK(s != nullptr);
    DPSTORE_CHECK_EQ(s->n(), n_) << "replicas must have equal size";
  }
  for (size_t i = 0; i < servers_.size(); ++i) {
    if (i < options_.num_servers) {
      active_.push_back(i);
    } else {
      spares_.push_back(i);
    }
  }
  DPSTORE_CHECK_GT(options_.alpha, 0.0);
  DPSTORE_CHECK_LT(options_.alpha, 1.0);
  DPSTORE_CHECK_GE(options_.epsilon, 0.0);
  double denom = (static_cast<double>(active_.size()) -
                  (1.0 - options_.alpha)) *
                 std::expm1(options_.epsilon);
  double k = denom <= 0.0
                 ? static_cast<double>(n_)
                 : (1.0 - options_.alpha) * static_cast<double>(n_) / denom;
  if (k < 1.0) k = 1.0;
  if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
  k_ = static_cast<uint64_t>(std::ceil(k));
  if (options_.use_dpf) {
    DPSTORE_CHECK_EQ(active_.size(), 2u)
        << "the DPF retrieval path needs exactly two non-colluding replicas";
    DPSTORE_CHECK_LE(DomainDepthFor(n_), crypto::kMaxDpfDepth);
  }
}

double MultiServerDpIr::achieved_epsilon() const {
  return std::log1p(
      (1.0 - options_.alpha) * static_cast<double>(n_) /
      (static_cast<double>(k_) *
       (static_cast<double>(active_.size()) - (1.0 - options_.alpha))));
}

void MultiServerDpIr::FailoverSlot(uint64_t slot, const Status& why) {
  std::string entry = "query " + std::to_string(queries_) + ": replica " +
                      std::to_string(active_[slot]) + " failed (" +
                      StatusCodeToString(why.code()) + ")";
  if (spares_.empty()) {
    entry += ", no spare left";
  } else {
    entry += ", failing over to replica " + std::to_string(spares_.front());
    active_[slot] = spares_.front();
    spares_.erase(spares_.begin());
    ++failovers_;
  }
  failover_log_.push_back(std::move(entry));
}

StatusOr<std::optional<Block>> MultiServerDpIr::Query(BlockId index) {
  if (index >= n_) {
    return OutOfRangeError("MultiServerDpIr::Query index out of range");
  }
  if (options_.use_dpf) return QueryDpf(index);
  ++queries_;
  const uint64_t d = active_.size();
  const bool error_branch = rng_.Bernoulli(options_.alpha);
  const uint64_t real_server = error_branch ? d : rng_.Uniform(d);

  // Phase 1 - submit every replica's subset as one exchange message before
  // waiting on any: the D per-replica roundtrips genuinely overlap on a
  // backend that can (AsyncShardedBackend), matching the "1 roundtrip per
  // replica, issued in parallel" accounting this scheme always advertised.
  std::vector<std::vector<uint64_t>> download_sets(d);
  std::vector<Ticket> tickets(d);
  for (uint64_t s = 0; s < d; ++s) {
    ActiveServer(s)->BeginQuery();
    std::vector<uint64_t>& download_set = download_sets[s];
    if (s == real_server) {
      if (k_ >= n_) {
        download_set.resize(n_);
        for (uint64_t i = 0; i < n_; ++i) download_set[i] = i;
      } else {
        download_set = rng_.SampleDistinctExcluding(k_ - 1, n_, index);
        download_set.push_back(index);
      }
    } else {
      download_set = rng_.SampleDistinct(k_, n_);
    }
    rng_.Shuffle(&download_set);
    tickets[s] =
        ActiveServer(s)->Submit(StorageRequest::DownloadOf(download_set));
  }
  // Phase 2 - collect the replies. Every ticket is waited on even after a
  // failure: an abandoned ticket would leak its parked reply in the
  // backend forever (tickets are single-use and evicted only by Wait).
  // A failed slot fails the whole query atomically AND is swapped for a
  // spare so the caller's retry (fresh subsets, fresh masks) runs against
  // a live ensemble.
  std::optional<Block> result;
  Status first_error = OkStatus();
  for (uint64_t s = 0; s < d; ++s) {
    // Wait through the PRE-failover server for this slot: the ticket was
    // issued there. FailoverSlot below only affects later queries.
    StorageBackend* server = ActiveServer(s);
    StatusOr<StorageReply> reply = server->Wait(tickets[s]);
    if (!reply.ok()) {
      if (first_error.ok()) first_error = reply.status();
      FailoverSlot(s, reply.status());
      continue;
    }
    if (s == real_server) {
      // The reply is one flat buffer; only the real record is copied out.
      for (size_t i = 0; i < download_sets[s].size(); ++i) {
        if (download_sets[s][i] == index) {
          result = ToBlock(reply->blocks[i]);
        }
      }
    }
  }
  DPSTORE_RETURN_IF_ERROR(first_error);
  if (error_branch) return std::optional<Block>();
  DPSTORE_CHECK(result.has_value());
  return result;
}

StatusOr<std::optional<Block>> MultiServerDpIr::QueryDpf(BlockId index) {
  // The error branch keys the eval to a uniform dummy point instead of
  // skipping it: both branches submit the same exchanges (one K-subset
  // download and one eval per replica), so the transcript SHAPE carries
  // no signal about which branch ran.
  ++queries_;
  const uint64_t d = active_.size();  // == 2 on this path (ctor CHECK)
  const bool error_branch = rng_.Bernoulli(options_.alpha);
  const uint64_t eval_point = error_branch ? rng_.Uniform(n_) : index;
  DPSTORE_ASSIGN_OR_RETURN(
      crypto::DpfKeyPair keys,
      crypto::DpfGen(eval_point, DomainDepthFor(n_)));
  std::vector<uint8_t> key_bytes[2] = {keys.key0.Serialize(),
                                       keys.key1.Serialize()};

  // Submit everything before waiting on anything, as in the planted path:
  // all-dummy cover subsets first, then the eval pair.
  std::vector<Ticket> subset_tickets(d);
  std::vector<Ticket> eval_tickets(d);
  for (uint64_t s = 0; s < d; ++s) {
    ActiveServer(s)->BeginQuery();
    std::vector<uint64_t> download_set = rng_.SampleDistinct(k_, n_);
    rng_.Shuffle(&download_set);
    subset_tickets[s] =
        ActiveServer(s)->Submit(StorageRequest::DownloadOf(download_set));
    eval_tickets[s] = ActiveServer(s)->Submit(
        StorageRequest::DpfEvalOf(key_bytes[s], /*dpf_offset=*/0));
  }
  // Wait on every ticket even after a failure (abandoned tickets leak).
  // A failed slot fails the query atomically and is swapped for a spare;
  // the caller's retry regenerates the DPF keys above, so the surviving
  // server never sees the same key twice (the hiding argument's demand).
  std::optional<Block> result;
  Status first_error = OkStatus();
  for (uint64_t s = 0; s < d; ++s) {
    StorageBackend* server = ActiveServer(s);
    StatusOr<StorageReply> subset = server->Wait(subset_tickets[s]);
    if (!subset.ok() && first_error.ok()) first_error = subset.status();
    StatusOr<StorageReply> share = server->Wait(eval_tickets[s]);
    if (!share.ok() || !subset.ok()) {
      if (!share.ok() && first_error.ok()) first_error = share.status();
      FailoverSlot(s, !share.ok() ? share.status() : subset.status());
      continue;
    }
    if (!result.has_value()) {
      result = ToBlock(share->blocks[0]);
    } else {
      kernels::XorAccumulate(result->data(), share->blocks[0].data(),
                             result->size());
    }
  }
  DPSTORE_RETURN_IF_ERROR(first_error);
  if (error_branch) return std::optional<Block>();
  DPSTORE_CHECK(result.has_value());
  return result;
}

TransportStats MultiServerDpIr::TransportTotals() const {
  TransportStats totals;
  for (const StorageBackend* s : servers_) totals += s->Stats();
  return totals;
}

}  // namespace dpstore
