#ifndef DPSTORE_CORE_STRAWMAN_IR_H_
#define DPSTORE_CORE_STRAWMAN_IR_H_

#include <cstdint>

#include "core/scheme.h"
#include "storage/backend.h"
#include "util/random.h"
#include "util/statusor.h"

namespace dpstore {

/// The deliberately *insecure* construction of Section 4, kept in the
/// library as a cautionary baseline for experiment E4.
///
/// Each query downloads the requested block with probability 1 and every
/// other block independently with probability 1/n - so the expected cost is
/// O(1) and the scheme "looks" like eps = Theta(log n) DP. But
/// Pr[B_i not in T | query i] = 0 while Pr[B_i not in T | query j] =
/// ((n-1)/n)^... ~ constant, which forces delta >= (n-1)/n in
/// (eps,delta)-DP: the absence of a block from the transcript almost surely
/// identifies what was not queried. See StrawmanDeltaFloor().
class StrawmanIr : public RamScheme {
 public:
  StrawmanIr(StorageBackend* server, uint64_t seed = 99);

  /// Always returns the requested block (the scheme is perfectly correct;
  /// it is the privacy that is broken).
  StatusOr<Block> Query(BlockId index);

  // RamScheme interface (read-only repertoire).
  uint64_t n() const override { return server_->n(); }
  size_t record_size() const override { return server_->block_size(); }
  StatusOr<std::optional<Block>> QueryRead(BlockId id) override;
  TransportStats TransportTotals() const override { return server_->Stats(); }

 private:
  StorageBackend* server_;
  Rng rng_;
};

}  // namespace dpstore

#endif  // DPSTORE_CORE_STRAWMAN_IR_H_
