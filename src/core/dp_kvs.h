#ifndef DPSTORE_CORE_DP_KVS_H_
#define DPSTORE_CORE_DP_KVS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/bucket_dp_ram.h"
#include "core/scheme.h"
#include "crypto/prf.h"
#include "hashing/bucket_tree.h"
#include "util/statusor.h"

namespace dpstore {

/// Fixed-layout codec for the slots inside one bucket-tree node block.
/// A node holds `slots_per_node` (the paper's t = Theta(1)) entries, each
/// entry a presence flag, a 64-bit key, and a fixed-size value:
///
///   [flag:1][key:8][value:value_size]  x  slots_per_node
class NodeCodec {
 public:
  NodeCodec(uint64_t slots_per_node, size_t value_size);

  uint64_t slots_per_node() const { return slots_per_node_; }
  size_t value_size() const { return value_size_; }
  size_t node_size() const { return node_size_; }

  bool SlotOccupied(const Block& node, uint64_t slot) const;
  uint64_t SlotKey(const Block& node, uint64_t slot) const;
  std::vector<uint8_t> SlotValue(const Block& node, uint64_t slot) const;

  void SetSlot(Block* node, uint64_t slot, uint64_t key,
               const std::vector<uint8_t>& value) const;
  void ClearSlot(Block* node, uint64_t slot) const;

  /// Slot index holding `key`, if present.
  std::optional<uint64_t> FindKey(const Block& node, uint64_t key) const;
  /// Lowest free slot index, if any.
  std::optional<uint64_t> FindFree(const Block& node) const;
  uint64_t OccupiedCount(const Block& node) const;

 private:
  size_t SlotOffset(uint64_t slot) const;

  uint64_t slots_per_node_;
  size_t value_size_;
  size_t node_size_;
};

/// Options for DpKvs.
struct DpKvsOptions {
  /// Target number of keys (the paper's n). The bucket forest is sized for
  /// this; inserting far beyond it raises the super-root overflow risk.
  uint64_t capacity = 1024;
  size_t value_size = 64;
  /// Slots per tree node (the paper's t = Theta(1)).
  uint64_t node_slots = 4;
  /// Client super-root capacity Phi(n) = omega(log n); 0 picks
  /// ceil(log2(n)^1.5), matching Theorem 7.2's requirement.
  uint64_t super_root_capacity = 0;
  /// Stash probability for the underlying bucketized DP-RAM; 0 picks the
  /// DefaultStashProbability of the bucket count.
  double stash_probability = 0.0;
  uint64_t seed = 777;
  /// Storage behind the bucketized DP-RAM; null means in-memory.
  BackendFactory backend_factory = nullptr;
};

/// Differentially private key-value storage (Section 7): keys from the
/// 64-bit universe, values of fixed size, Get of an absent key returns
/// nullopt (the paper's perp).
///
/// Composition (Theorem 7.1): an oblivious two-choice *mapping scheme*
/// assigns each key two buckets Pi(u) = {F(key1,u), F(key2,u)} - leaf-to-root
/// paths in a forest of Theta(n/log n) binary trees with shared node storage
/// (Section 7.2) - and the buckets are accessed through the Appendix E
/// bucketized DP-RAM. Every Get performs k(n)=2 bucket queries and every Put
/// performs 2 reads + 2 updates (one real, one fake), so the privacy budget
/// is eps = O(k(n) log n) by composition and the overhead is
/// O(k(n) s(n)) = O(log log n) node blocks per operation.
///
/// The storing algorithm S places a new key at the lowest-height node with a
/// free slot along either of its two paths, overflowing into the client-side
/// super root (capacity Phi(n) = omega(log n)); by Theorem 7.2 the super
/// root overflows only with negligible probability, which surfaces here as
/// ResourceExhausted.
class DpKvs : public KvsScheme {
 public:
  explicit DpKvs(DpKvsOptions options);

  /// Populates an empty store with `items` in one setup pass: the storing
  /// algorithm runs client-side over all keys and the node array is
  /// uploaded once, instead of paying 4 bucket queries per key through
  /// Put. FailedPrecondition if the store is non-empty; InvalidArgument on
  /// duplicate keys or wrong value sizes; ResourceExhausted if the super
  /// root overflows (negligible under Theorem 7.2 sizing).
  Status BulkLoad(const std::vector<std::pair<Key, Value>>& items);

  /// Retrieves the value for `key`, or nullopt if `key` was never stored
  /// (both bucket paths and the super root are always searched; absent keys
  /// cost exactly as much as present ones).
  StatusOr<std::optional<Value>> Get(Key key) override;

  /// Inserts or updates `key`. Values must be exactly value_size bytes.
  Status Put(Key key, const Value& value) override;

  /// Removes `key` if present (extension beyond the paper's read/overwrite
  /// repertoire; uses the same 2-read + 2-update access shape as Put).
  Status Erase(Key key) override;
  bool SupportsErase() const override { return true; }

  /// Number of distinct keys currently stored.
  uint64_t size() const override { return size_; }
  size_t value_size() const override { return options_.value_size; }
  TransportStats TransportTotals() const override {
    return bucket_ram_->server().Stats();
  }
  uint64_t capacity() const { return options_.capacity; }

  uint64_t super_root_size() const { return super_root_.size(); }
  uint64_t super_root_peak_size() const { return super_root_peak_; }
  uint64_t super_root_capacity() const { return super_root_capacity_; }

  const BucketTreeGeometry& geometry() const { return geometry_; }
  const NodeCodec& codec() const { return codec_; }
  BucketDpRam& bucket_ram() { return *bucket_ram_; }
  StorageBackend& server() { return bucket_ram_->server(); }

  /// Node blocks moved per Get (2 bucket queries x 3 s(n)).
  uint64_t BlocksPerGet() const { return 2 * 3 * geometry_.path_length(); }
  /// Node blocks moved per Put (2 reads + 2 updates).
  uint64_t BlocksPerPut() const { return 4 * 3 * geometry_.path_length(); }

  /// The two candidate leaves Pi(key) (may coincide; queries pad with a
  /// random dummy bucket in that case).
  std::pair<uint64_t, uint64_t> Choices(Key key) const;

 private:
  struct Snapshot {
    uint64_t leaf1;
    uint64_t leaf2;  // dummy-padded second bucket actually queried
    bool same_choice;  // true when Pi gave two equal leaves
    std::vector<Block> content1;
    std::vector<Block> content2;
  };

  StatusOr<Snapshot> ReadBoth(Key key);

  /// Applies `edit` to the node at `path_index` of leaf `leaf`'s bucket
  /// while fake-updating the other queried bucket.
  Status WriteBoth(const Snapshot& snap, std::optional<uint64_t> target_leaf,
                   std::optional<uint64_t> target_path_index,
                   const std::function<void(Block*)>& edit);

  DpKvsOptions options_;
  BucketTreeGeometry geometry_;
  NodeCodec codec_;
  crypto::PrfKey prf_key1_;
  crypto::PrfKey prf_key2_;
  std::unique_ptr<BucketDpRam> bucket_ram_;
  std::unordered_map<Key, Value> super_root_;
  uint64_t super_root_capacity_;
  uint64_t super_root_peak_ = 0;
  uint64_t size_ = 0;
  Rng rng_;
};

}  // namespace dpstore

#endif  // DPSTORE_CORE_DP_KVS_H_
