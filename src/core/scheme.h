#ifndef DPSTORE_CORE_SCHEME_H_
#define DPSTORE_CORE_SCHEME_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "storage/backend.h"
#include "storage/block.h"
#include "util/statusor.h"

namespace dpstore {

/// Unified client-side interface for every RAM-repertoire scheme in the
/// library (Section 2.1: queries are (index, op) pairs over n fixed-size
/// records). Strawman IR, DP-IR, multi-server DP-IR, DP-RAM, the bucketized
/// DP-RAM, linear ORAM, Path ORAM and the tunable DP-ORAM all implement
/// this, so the workload driver, registry and benches can run any of them
/// side by side - the repertoire the paper's E4/E5/E12 comparisons need.
///
/// Semantics:
///  * QueryRead returns nullopt for the paper's perp - the allowed error
///    branch of DP-IR-style schemes (probability alpha). Schemes without an
///    error branch always return a value.
///  * QueryWrite is Unimplemented for read-only constructions (IR schemes,
///    retrieval-only DP-RAM); SupportsWrite() advertises which.
///  * TransportTotals aggregates blocks/bytes/roundtrips over every backend
///    the scheme talks to (replicas, recursive position-map ORAMs included),
///    cumulatively since construction; callers diff snapshots to meter a
///    window.
class RamScheme {
 public:
  virtual ~RamScheme() = default;
  // Polymorphic interface: copying through a base would slice. Schemes are
  // identities (they own client state and backends), held by unique_ptr.
  RamScheme() = default;
  RamScheme(const RamScheme&) = delete;
  RamScheme& operator=(const RamScheme&) = delete;

  /// Number of logical records.
  virtual uint64_t n() const = 0;
  /// Payload bytes per logical record.
  virtual size_t record_size() const = 0;

  /// Retrieves record `id`; nullopt is the scheme's allowed error (perp).
  virtual StatusOr<std::optional<Block>> QueryRead(BlockId id) = 0;

  /// Overwrites record `id`. Unimplemented on read-only schemes.
  virtual Status QueryWrite(BlockId id, Block value);

  virtual bool SupportsWrite() const { return false; }

  /// Cumulative transport counters across all backends since construction.
  virtual TransportStats TransportTotals() const = 0;
};

/// Unified client-side interface for the key-value schemes (Section 7
/// repertoire: keys from the 64-bit universe, fixed-size values, Get of an
/// absent key returns nullopt). DP-KVS and both ORAM-backed directories
/// implement this.
class KvsScheme {
 public:
  using Key = uint64_t;
  using Value = std::vector<uint8_t>;

  virtual ~KvsScheme() = default;
  // Non-copyable for the same slicing reason as RamScheme.
  KvsScheme() = default;
  KvsScheme(const KvsScheme&) = delete;
  KvsScheme& operator=(const KvsScheme&) = delete;

  /// Retrieves the value for `key`, or nullopt if never stored.
  virtual StatusOr<std::optional<Value>> Get(Key key) = 0;

  /// Inserts or updates `key`; values must be value_size() bytes.
  virtual Status Put(Key key, const Value& value) = 0;

  /// Removes `key`. Unimplemented on schemes without a delete repertoire.
  virtual Status Erase(Key key);

  virtual bool SupportsErase() const { return false; }

  /// Number of distinct keys currently stored.
  virtual uint64_t size() const = 0;
  /// Bytes per value.
  virtual size_t value_size() const = 0;

  /// Cumulative transport counters across all backends since construction.
  virtual TransportStats TransportTotals() const = 0;
};

}  // namespace dpstore

#endif  // DPSTORE_CORE_SCHEME_H_
