#ifndef DPSTORE_CORE_SCHEME_REGISTRY_H_
#define DPSTORE_CORE_SCHEME_REGISTRY_H_

/// \file
/// SchemeConfig + SchemeRegistry: build any scheme in the library, on any
/// storage topology, by name from one config value. This is the header
/// every bench, test, and experiment driver goes through — "run every
/// scheme against every workload on every backend" is a loop over
/// RamSchemeNames() x backends, not a hand-written matrix. The layer map
/// is in docs/architecture.md.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/scheme.h"
#include "storage/backend.h"
#include "util/statusor.h"

namespace dpstore {

struct CacheStats;  // storage/write_back_cache.h

/// One configuration for building any registered scheme by name. The
/// registry translates the backend fields into a BackendFactory, so a single
/// config drives every cell of a schemes x backends sweep.
struct SchemeConfig {
  /// Records (RAM repertoire) or key capacity (KVS repertoire).
  uint64_t n = 256;
  /// Payload bytes per record / value.
  size_t value_size = 64;
  uint64_t seed = 1;

  /// Storage topology: "memory" (single in-memory server), "sharded"
  /// (ShardedBackend over `shards` in-memory shards), "async_sharded"
  /// (AsyncShardedBackend: the same partition with one worker thread per
  /// shard, legs genuinely overlapped), "cached" (WriteBackCacheBackend
  /// of `cache_blocks` blocks over an in-memory server), "fused"
  /// (FusingBackend coalescing adjacent same-direction exchanges up to
  /// `fuse_blocks` blocks over an in-memory server), "socket"
  /// (SocketBackend: the real RPC transport — exchanges serialized over a
  /// socket to a dpstore_server at `socket_path` / `socket_host:port`, or
  /// to an in-process socketpair server when neither is set), "cluster"
  /// (ClusterBackend: shard ranges + replica groups + warm spares over
  /// per-node SocketBackend legs against N real dpstore_server processes,
  /// parsed from `cluster_config`; docs/cluster.md), or "retry"
  /// (RetryingBackend decorating a `retry_inner` backend: bounded retry of
  /// exchanges that failed before any state change).
  std::string backend = "memory";
  uint64_t shards = 4;
  /// Write-back cache capacity in blocks (backend "cached").
  uint64_t cache_blocks = 64;
  /// Fused-exchange block budget (backend "fused"); 1 = no fusion.
  uint64_t fuse_blocks = 64;
  /// Optional fused-exchange byte budget (backend "fused"); 0 = unlimited.
  uint64_t fuse_bytes = 0;
  /// Unix-domain path of a running dpstore_server (backend "socket").
  std::string socket_path;
  /// Second server process for the genuinely-two-server schemes
  /// (dpf_pir): replica 1 connects here instead of `socket_path`, so the
  /// two keys of one query really land in different processes. Empty =
  /// both replicas use the `socket_path` server (distinct private
  /// namespaces — still distinct arenas, one process).
  std::string socket_path2;
  /// TCP endpoint of a running dpstore_server (backend "socket"). With
  /// both this and `socket_path` empty, every backend the factory builds
  /// spawns its own in-process socketpair server.
  std::string socket_host;
  uint16_t socket_port = 0;
  /// Bounded auto-reconnect budget per socket backend (backend "socket");
  /// 0 keeps the classic latch-on-first-break semantics.
  int socket_reconnect_max = 0;
  /// When nonzero, each socket backend the factory builds attaches to the
  /// SHARED server namespace `socket_namespace_base + k` (k = build
  /// order) instead of a connection-private arena — required for
  /// reconnect to find its data again, since private namespaces are freed
  /// at disconnect. Ids must stay below 2^63.
  uint64_t socket_namespace_base = 0;
  /// Cluster topology text for backend "cluster" (a ClusterBackend fanning
  /// exchanges over per-node SocketBackend legs): the parsed config names
  /// node endpoints, shard ranges, replica groups, and warm spares. Format
  /// and semantics: docs/cluster.md. Parse errors surface from
  /// BackendFactoryFor as typed InvalidArgument.
  std::string cluster_config;
  /// Per-leg completion budget in ms for cluster legs (backend "cluster");
  /// 0 = none. A leg that trips it triggers the same failover as a dead
  /// connection.
  uint64_t cluster_leg_deadline_ms = 0;
  /// RetryingBackend knobs (backend "retry"): the decorated topology and
  /// the attempt/backoff policy. `retry_inner` accepts any backend name
  /// except "retry" itself.
  std::string retry_inner = "memory";
  int retry_max_attempts = 3;
  uint64_t retry_base_ms = 1;
  uint64_t retry_cap_ms = 100;
  /// Optional sink accumulating hit/miss counters across every cache the
  /// factory builds for this scheme (backend "cached").
  std::shared_ptr<CacheStats> cache_stats;
  /// Explicit factory override: when set it wins over `backend`, letting
  /// tests and benches interpose custom topologies (or observe the backends
  /// a scheme builds) without registering a new backend name.
  BackendFactory backend_factory;
  /// Born with counting-only transcripts (bench mode: tallies, no events).
  bool counting_only_transcript = false;

  /// DP-IR-family budget; 0 picks the scheme default eps = ln(n), the
  /// Theorem 5.1 constant-overhead regime.
  double epsilon = 0.0;
  /// DP-IR-family error probability.
  double alpha = 0.1;

  /// Replica endpoints built for the multi-server schemes (dpf_pir and
  /// multi_server_dp_ir*). The scheme's protocol width stays what it was
  /// (2 for dpf_pir, D for multi_server_dp_ir); endpoints beyond that are
  /// SPARES the scheme fails over to when an active replica dies.
  uint64_t replicas = 2;
};

/// Resolves SchemeConfig's backend fields. NotFound for unknown names.
StatusOr<BackendFactory> BackendFactoryFor(const SchemeConfig& config);

/// String-keyed factory over every scheme in the library. All RAM-repertoire
/// schemes come pre-seeded with the marker database MarkerBlock(i,
/// value_size) for i in [0, n), so a freshly built scheme is immediately
/// queryable and verifiable; KVS schemes start empty.
///
/// The registry is what makes "run every scheme against every workload on
/// every backend" a loop instead of a hand-written matrix: benches, the
/// workload driver and tests all construct through here.
class SchemeRegistry {
 public:
  using RamFactory =
      std::function<StatusOr<std::unique_ptr<RamScheme>>(const SchemeConfig&)>;
  using KvsFactory =
      std::function<StatusOr<std::unique_ptr<KvsScheme>>(const SchemeConfig&)>;

  /// The process-wide registry, pre-populated with every built-in scheme.
  static SchemeRegistry& Instance();

  /// Registers a factory under `name`; later registrations win, so tests
  /// and experiments can shadow a built-in.
  /// \param name     lookup key (conventionally snake_case scheme name)
  /// \param factory  builds a scheme from a SchemeConfig, or returns why
  ///                 it cannot (bad config values surface here)
  void RegisterRam(const std::string& name, RamFactory factory);
  void RegisterKvs(const std::string& name, KvsFactory factory);

  /// Builds the RAM scheme registered as `name`.
  /// \param name    a registered scheme name (see RamSchemeNames())
  /// \param config  geometry, seed, backend topology, DP parameters
  /// \return a ready-to-query scheme pre-seeded with the marker database,
  ///         NotFound for unknown names, or the factory's own error
  StatusOr<std::unique_ptr<RamScheme>> MakeRam(
      const std::string& name, const SchemeConfig& config) const;
  /// KVS counterpart of MakeRam; KVS schemes start empty.
  StatusOr<std::unique_ptr<KvsScheme>> MakeKvs(
      const std::string& name, const SchemeConfig& config) const;

  /// Registered names, sorted (deterministic sweep order).
  std::vector<std::string> RamSchemeNames() const;
  std::vector<std::string> KvsSchemeNames() const;

 private:
  SchemeRegistry();  // registers the built-ins

  std::vector<std::pair<std::string, RamFactory>> ram_;
  std::vector<std::pair<std::string, KvsFactory>> kvs_;
};

}  // namespace dpstore

#endif  // DPSTORE_CORE_SCHEME_REGISTRY_H_
