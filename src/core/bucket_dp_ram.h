#ifndef DPSTORE_CORE_BUCKET_DP_RAM_H_
#define DPSTORE_CORE_BUCKET_DP_RAM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/cipher.h"
#include "hashing/bucket_tree.h"
#include "storage/backend.h"
#include "util/random.h"
#include "util/statusor.h"

namespace dpstore {

/// Options for the bucketized DP-RAM (Appendix E).
struct BucketDpRamOptions {
  /// Stash probability p for bucket stashing, as in DpRamOptions.
  double stash_probability = 0.0;
  uint64_t seed = 4321;
  /// Storage behind the node array; null means an in-memory StorageServer.
  BackendFactory backend_factory = nullptr;
};

/// Appendix E generalization of the Section 6 DP-RAM: the query repertoire
/// is a set Sigma of b buckets, each bucket a fixed sequence of s node
/// addresses in server storage, and *buckets may overlap*. The server stores
/// only the underlying nodes once (O(n) storage); a query on bucket sigma
/// fetches/uploads sigma's s nodes, so each query moves exactly 3s blocks
/// (the DP-RAM's 2 downloads + 1 upload at bucket granularity). Both
/// download phases ride one batched exchange and the write-back one batched
/// upload, so a bucket query is a single roundtrip.
///
/// Overlap handling follows the appendix's prescription: the client keeps an
/// authoritative overlay copy of every node belonging to a currently stashed
/// bucket (refcounted across overlapping stashed buckets). Retrievals prefer
/// the overlay copy over the server copy; write-backs update both the server
/// copy and any live overlay copy.
///
/// This is the storage engine underneath DpKvs; bucket = the leaf-to-root
/// path of the oblivious two-choice bucket tree.
class BucketDpRam {
 public:
  /// `buckets[b]` lists the node addresses of bucket b; node addresses must
  /// be < num_nodes. Node plaintexts are `node_size` bytes.
  BucketDpRam(std::vector<std::vector<NodeId>> buckets, uint64_t num_nodes,
              size_t node_size, BucketDpRamOptions options);

  /// Uploads initial node contents (all num_nodes of them, encrypted).
  /// Unlike queries this is the setup phase and is not transcript-recorded.
  Status Setup(const std::vector<Block>& node_plaintexts);

  /// Convenience: setup with all-zero nodes.
  Status SetupZero();

  /// Reads the current plaintext contents of bucket `bucket`'s nodes, in
  /// bucket order. One DP-RAM query: 2s downloads + s uploads.
  StatusOr<std::vector<Block>> ReadBucket(uint64_t bucket);

  /// Receives the bucket's current node contents for in-place mutation.
  using MutateFn = std::function<void(std::vector<Block>*)>;

  /// Read-modify-write of bucket `bucket` in one DP-RAM query. A no-op
  /// `mutate` is a "fake update" - outwardly indistinguishable from a real
  /// one because every node is re-encrypted with fresh randomness anyway.
  Status WriteBucket(uint64_t bucket, const MutateFn& mutate);

  uint64_t bucket_count() const { return buckets_.size(); }
  uint64_t num_nodes() const { return num_nodes_; }
  size_t node_size() const { return node_size_; }
  double stash_probability() const { return options_.stash_probability; }

  size_t stashed_bucket_count() const { return stashed_buckets_.size(); }
  size_t overlay_node_count() const { return overlay_.size(); }
  size_t peak_stashed_bucket_count() const { return peak_stashed_; }

  StorageBackend& server() { return *server_; }
  const StorageBackend& server() const { return *server_; }

  /// Authoritative current plaintext of a node (overlay copy if live, else
  /// decrypted server copy). Unrecorded; for tests and invariant checks.
  StatusOr<Block> PeekNode(NodeId node) const;

 private:
  StatusOr<std::vector<Block>> Query(uint64_t bucket, const MutateFn* mutate);

  void StashBucket(uint64_t bucket, const std::vector<Block>& content);
  std::vector<Block> UnstashBucket(uint64_t bucket);

  std::vector<std::vector<NodeId>> buckets_;
  uint64_t num_nodes_;
  size_t node_size_;
  BucketDpRamOptions options_;
  std::unique_ptr<StorageBackend> server_;
  crypto::Cipher cipher_;
  Rng rng_;

  std::unordered_set<uint64_t> stashed_buckets_;
  std::unordered_map<NodeId, Block> overlay_;
  std::unordered_map<NodeId, uint32_t> overlay_refcount_;
  size_t peak_stashed_ = 0;
};

}  // namespace dpstore

#endif  // DPSTORE_CORE_BUCKET_DP_RAM_H_
