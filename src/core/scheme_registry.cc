#include "core/scheme_registry.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <utility>

#include "core/bucket_dp_ram.h"
#include "core/dp_ir.h"
#include "core/dp_kvs.h"
#include "core/dp_ram.h"
#include "core/multi_server_dp_ir.h"
#include "core/strawman_ir.h"
#include "oram/cuckoo_oram_kvs.h"
#include "oram/linear_oram.h"
#include "oram/oram_kvs.h"
#include "oram/path_oram.h"
#include "oram/tunable_dp_oram.h"
#include "pir/dpf_pir.h"
#include "pir/trivial_pir.h"
#include "pir/xor_pir.h"
#include "storage/async_sharded_backend.h"
#include "storage/cluster.h"
#include "storage/fusing_backend.h"
#include "storage/retrying_backend.h"
#include "storage/sharded_backend.h"
#include "storage/socket_backend.h"
#include "storage/write_back_cache.h"

namespace dpstore {

namespace {

std::vector<Block> MarkerDatabase(uint64_t n, size_t record_size) {
  std::vector<Block> db(n);
  for (uint64_t i = 0; i < n; ++i) db[i] = MarkerBlock(i, record_size);
  return db;
}

double EffectiveEpsilon(const SchemeConfig& config) {
  // The Theorem 5.1 sweet spot: eps = Theta(log n) buys constant overhead.
  return config.epsilon > 0.0 ? config.epsilon
                              : std::log(static_cast<double>(config.n));
}

/// A RamScheme that owns the external backends an IR-style scheme queries
/// through, so registry products are self-contained values.
template <typename S>
class OwnedBackendRam : public RamScheme {
 public:
  OwnedBackendRam(std::vector<std::unique_ptr<StorageBackend>> backends,
                  std::unique_ptr<S> scheme)
      : backends_(std::move(backends)), scheme_(std::move(scheme)) {}

  uint64_t n() const override { return scheme_->n(); }
  size_t record_size() const override { return scheme_->record_size(); }
  StatusOr<std::optional<Block>> QueryRead(BlockId id) override {
    return scheme_->QueryRead(id);
  }
  Status QueryWrite(BlockId id, Block value) override {
    return scheme_->QueryWrite(id, std::move(value));
  }
  bool SupportsWrite() const override { return scheme_->SupportsWrite(); }
  TransportStats TransportTotals() const override {
    return scheme_->TransportTotals();
  }

 private:
  std::vector<std::unique_ptr<StorageBackend>> backends_;
  std::unique_ptr<S> scheme_;
};

/// One marker-loaded plaintext backend (the public database of the IR
/// schemes).
StatusOr<std::unique_ptr<StorageBackend>> MakePublicDatabase(
    const SchemeConfig& config, const BackendFactory& factory) {
  std::unique_ptr<StorageBackend> backend =
      MakeBackend(factory, config.n, config.value_size);
  DPSTORE_RETURN_IF_ERROR(
      backend->SetArray(MarkerDatabase(config.n, config.value_size)));
  return backend;
}

/// The Appendix E bucketized DP-RAM exposed through the flat RAM repertoire:
/// n singleton buckets {i}, so bucket i *is* record i (s = 1). Degenerate
/// but exactly the Sigma = {{0}, ..., {n-1}} instantiation the appendix
/// uses to recover Section 6's DP-RAM.
class BucketDpRamScheme : public RamScheme {
 public:
  BucketDpRamScheme(std::unique_ptr<BucketDpRam> ram, size_t record_size)
      : ram_(std::move(ram)), record_size_(record_size) {}

  uint64_t n() const override { return ram_->bucket_count(); }
  size_t record_size() const override { return record_size_; }

  StatusOr<std::optional<Block>> QueryRead(BlockId id) override {
    if (id >= ram_->bucket_count()) {
      return OutOfRangeError("BucketDpRamScheme: id out of range");
    }
    DPSTORE_ASSIGN_OR_RETURN(std::vector<Block> content,
                             ram_->ReadBucket(id));
    return std::optional<Block>(std::move(content[0]));
  }

  Status QueryWrite(BlockId id, Block value) override {
    if (id >= ram_->bucket_count()) {
      return OutOfRangeError("BucketDpRamScheme: id out of range");
    }
    if (value.size() != record_size_) {
      return InvalidArgumentError("BucketDpRamScheme: value size mismatch");
    }
    return ram_->WriteBucket(id, [&value](std::vector<Block>* content) {
      (*content)[0] = value;
    });
  }

  bool SupportsWrite() const override { return true; }
  TransportStats TransportTotals() const override {
    return ram_->server().Stats();
  }

  BucketDpRam& ram() { return *ram_; }

 private:
  std::unique_ptr<BucketDpRam> ram_;
  size_t record_size_;
};

/// Download-everything PIR behind the unified RAM interface: owns its
/// marker-loaded backend, so the one-exchange-per-query transcript rides on
/// whatever topology the config names.
class TrivialPirScheme : public RamScheme {
 public:
  explicit TrivialPirScheme(std::unique_ptr<StorageBackend> backend)
      : backend_(std::move(backend)), pir_(backend_.get()) {}

  uint64_t n() const override { return backend_->n(); }
  size_t record_size() const override { return backend_->block_size(); }
  StatusOr<std::optional<Block>> QueryRead(BlockId id) override {
    DPSTORE_ASSIGN_OR_RETURN(Block block, pir_.Query(id));
    return std::optional<Block>(std::move(block));
  }
  TransportStats TransportTotals() const override { return backend_->Stats(); }

 private:
  std::unique_ptr<StorageBackend> backend_;
  TrivialPir pir_;
};

/// Two-server XOR PIR behind the unified RAM interface. Its servers
/// *compute* (subset XOR) rather than move addressed blocks, so they are
/// not StorageBackends and the config's storage topology does not apply;
/// transport totals are synthesized from the protocol: per query, one
/// n-bit selector up and one block down per server, one roundtrip per
/// server (matching MultiServerDpIr's convention of pricing each
/// parallel-replica exchange individually, so the sweep compares the two
/// multi-server schemes on equal terms).
class XorPirScheme : public RamScheme {
 public:
  XorPirScheme(std::vector<Block> database, size_t record_size, uint64_t seed)
      : record_size_(record_size),
        server0_(database),
        server1_(std::move(database)),
        pir_(&server0_, &server1_, seed) {}

  uint64_t n() const override { return server0_.n(); }
  size_t record_size() const override { return record_size_; }
  StatusOr<std::optional<Block>> QueryRead(BlockId id) override {
    if (id >= server0_.n()) {
      return OutOfRangeError("XorPirScheme: id out of range");
    }
    DPSTORE_ASSIGN_OR_RETURN(Block block, pir_.Query(id));
    ++queries_;
    return std::optional<Block>(std::move(block));
  }
  TransportStats TransportTotals() const override {
    TransportStats stats;
    stats.blocks_moved = 2 * queries_;  // one answer block per server
    stats.bytes_moved = 2 * queries_ * record_size_;
    // The n-bit selectors are opaque non-block query bytes — the same
    // axis dpf_pir's keys land on, so the two schemes' query bandwidth
    // compares directly.
    stats.aux_bytes =
        (server0_.query_bits_received() + server1_.query_bits_received()) / 8;
    stats.roundtrips = 2 * queries_;  // one per server, as in MultiServerDpIr
    return stats;
  }

 private:
  size_t record_size_;
  XorPirServer server0_;
  XorPirServer server1_;
  TwoServerXorPir pir_;
  uint64_t queries_ = 0;
};

/// Two-server DPF PIR behind the unified RAM interface: owns both
/// marker-loaded replica backends, so — unlike xor_pir's bespoke compute
/// servers — the config's storage topology applies and the eval rides on
/// memory, sharded, cached, fused or socket transports alike. Transport
/// totals come straight from the replicas' transcripts: per query per
/// replica, 1 eval roundtrip, 1 aggregate block down, O(lambda log n)
/// key bytes up (TransportStats::aux_bytes).
class DpfPirScheme : public RamScheme {
 public:
  /// `replicas.size() >= 2`; replicas beyond the active pair are failover
  /// spares (see TwoServerDpfPir).
  explicit DpfPirScheme(std::vector<std::unique_ptr<StorageBackend>> replicas)
      : replicas_(std::move(replicas)), pir_(Pointers(replicas_)) {}

  uint64_t n() const override { return pir_.n(); }
  size_t record_size() const override { return pir_.block_size(); }
  StatusOr<std::optional<Block>> QueryRead(BlockId id) override {
    DPSTORE_ASSIGN_OR_RETURN(Block block, pir_.Query(id));
    return std::optional<Block>(std::move(block));
  }
  TransportStats TransportTotals() const override {
    TransportStats stats;
    for (const auto& replica : replicas_) stats += replica->Stats();
    return stats;
  }

 private:
  static std::vector<StorageBackend*> Pointers(
      const std::vector<std::unique_ptr<StorageBackend>>& owned) {
    std::vector<StorageBackend*> pointers;
    for (const auto& replica : owned) pointers.push_back(replica.get());
    return pointers;
  }

  std::vector<std::unique_ptr<StorageBackend>> replicas_;
  TwoServerDpfPir pir_;
};

}  // namespace

StatusOr<BackendFactory> BackendFactoryFor(const SchemeConfig& config) {
  if (config.backend_factory) return config.backend_factory;
  if (config.backend == "memory") {
    return MemoryBackendFactory(config.counting_only_transcript);
  }
  if (config.backend == "sharded" || config.backend == "async_sharded") {
    if (config.shards == 0) {
      return InvalidArgumentError("sharded backend needs shards >= 1");
    }
    return config.backend == "sharded"
               ? ShardedBackendFactory(config.shards,
                                       config.counting_only_transcript)
               : AsyncShardedBackendFactory(config.shards,
                                            config.counting_only_transcript);
  }
  if (config.backend == "cached") {
    if (config.cache_blocks == 0) {
      return InvalidArgumentError("cached backend needs cache_blocks >= 1");
    }
    return WriteBackCacheBackendFactory(
        config.cache_blocks,
        MemoryBackendFactory(config.counting_only_transcript),
        config.cache_stats);
  }
  if (config.backend == "fused") {
    if (config.fuse_blocks == 0) {
      return InvalidArgumentError("fused backend needs fuse_blocks >= 1");
    }
    return FusingBackendFactory(
        config.fuse_blocks,
        MemoryBackendFactory(config.counting_only_transcript),
        config.fuse_bytes, config.counting_only_transcript);
  }
  if (config.backend == "socket") {
    SocketBackendOptions options;
    options.socket_path = config.socket_path;
    options.host = config.socket_host;
    options.port = config.socket_port;
    options.max_reconnects = config.socket_reconnect_max;
    if (!options.host.empty() && options.port == 0) {
      return InvalidArgumentError("socket backend needs socket_port with "
                                  "socket_host");
    }
    // A port without a host would otherwise silently fall back to the
    // in-process socketpair server — and measure the wrong transport.
    if (options.host.empty() && options.port != 0) {
      return InvalidArgumentError("socket backend needs socket_host with "
                                  "socket_port");
    }
    if (config.socket_namespace_base == 0) {
      return SocketBackendFactory(std::move(options),
                                  config.counting_only_transcript);
    }
    if (config.socket_namespace_base >> 63 != 0) {
      return InvalidArgumentError(
          "socket_namespace_base must stay below 2^63 (the upper half is "
          "server-minted private ids)");
    }
    // Shared-namespace minting: the k-th backend this factory builds
    // attaches to namespace base + k, so a reconnecting backend finds its
    // arena again (a private namespace would have been freed at the
    // disconnect). Seeds are decorrelated per backend so two replicas
    // never back off in lockstep.
    auto next = std::make_shared<std::atomic<uint64_t>>(0);
    const bool counting = config.counting_only_transcript;
    const uint64_t base = config.socket_namespace_base;
    return BackendFactory(
        [options, next, counting, base](uint64_t n, size_t block_size) {
          SocketBackendOptions per = options;
          const uint64_t k = next->fetch_add(1);
          per.namespace_id = base + k;
          per.attach_or_create = true;
          per.reconnect_seed = options.reconnect_seed + 1 + k;
          auto backend =
              std::make_unique<SocketBackend>(n, block_size, std::move(per));
          if (counting) backend->SetTranscriptCountingOnly(true);
          return std::unique_ptr<StorageBackend>(std::move(backend));
        });
  }
  if (config.backend == "cluster") {
    if (config.cluster_config.empty()) {
      return InvalidArgumentError(
          "cluster backend needs cluster_config text (docs/cluster.md)");
    }
    DPSTORE_ASSIGN_OR_RETURN(ClusterConfig cluster,
                             ClusterConfig::Parse(config.cluster_config));
    if (config.socket_namespace_base >> 63 != 0) {
      return InvalidArgumentError(
          "socket_namespace_base must stay below 2^63 (the upper half is "
          "server-minted private ids)");
    }
    ClusterBackendOptions options;
    options.leg_deadline_ms = config.cluster_leg_deadline_ms;
    options.max_reconnects = config.socket_reconnect_max;
    options.namespace_base = config.socket_namespace_base;
    options.reconnect_seed = config.seed;
    return ClusterBackendFactory(std::move(cluster), std::move(options),
                                 config.counting_only_transcript);
  }
  if (config.backend == "retry") {
    if (config.retry_inner == "retry") {
      return InvalidArgumentError("retry_inner cannot itself be 'retry'");
    }
    SchemeConfig inner = config;
    inner.backend = config.retry_inner;
    DPSTORE_ASSIGN_OR_RETURN(BackendFactory inner_factory,
                             BackendFactoryFor(inner));
    RetryingBackendOptions options;
    options.max_attempts = config.retry_max_attempts;
    options.base_backoff_ms = config.retry_base_ms;
    options.cap_backoff_ms = config.retry_cap_ms;
    options.seed = config.seed;
    return RetryingBackendFactory(std::move(options),
                                  std::move(inner_factory));
  }
  return NotFoundError(
      "unknown backend '" + config.backend +
      "' (known: memory, sharded, async_sharded, cached, fused, socket, "
      "cluster, retry)");
}

SchemeRegistry& SchemeRegistry::Instance() {
  static SchemeRegistry* registry = new SchemeRegistry();
  return *registry;
}

void SchemeRegistry::RegisterRam(const std::string& name, RamFactory factory) {
  ram_.emplace_back(name, std::move(factory));
}

void SchemeRegistry::RegisterKvs(const std::string& name, KvsFactory factory) {
  kvs_.emplace_back(name, std::move(factory));
}

StatusOr<std::unique_ptr<RamScheme>> SchemeRegistry::MakeRam(
    const std::string& name, const SchemeConfig& config) const {
  // Later registrations shadow earlier ones.
  for (auto it = ram_.rbegin(); it != ram_.rend(); ++it) {
    if (it->first == name) return it->second(config);
  }
  return NotFoundError("no RAM scheme registered as '" + name + "'");
}

StatusOr<std::unique_ptr<KvsScheme>> SchemeRegistry::MakeKvs(
    const std::string& name, const SchemeConfig& config) const {
  for (auto it = kvs_.rbegin(); it != kvs_.rend(); ++it) {
    if (it->first == name) return it->second(config);
  }
  return NotFoundError("no KVS scheme registered as '" + name + "'");
}

std::vector<std::string> SchemeRegistry::RamSchemeNames() const {
  std::vector<std::string> names;
  for (const auto& [name, factory] : ram_) names.push_back(name);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::vector<std::string> SchemeRegistry::KvsSchemeNames() const {
  std::vector<std::string> names;
  for (const auto& [name, factory] : kvs_) names.push_back(name);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

SchemeRegistry::SchemeRegistry() {
  // --- RAM repertoire ------------------------------------------------------

  RegisterRam("strawman_ir", [](const SchemeConfig& config)
                  -> StatusOr<std::unique_ptr<RamScheme>> {
    DPSTORE_ASSIGN_OR_RETURN(BackendFactory factory, BackendFactoryFor(config));
    DPSTORE_ASSIGN_OR_RETURN(std::unique_ptr<StorageBackend> backend,
                             MakePublicDatabase(config, factory));
    auto scheme = std::make_unique<StrawmanIr>(backend.get(), config.seed);
    std::vector<std::unique_ptr<StorageBackend>> backends;
    backends.push_back(std::move(backend));
    return std::unique_ptr<RamScheme>(std::make_unique<
        OwnedBackendRam<StrawmanIr>>(std::move(backends), std::move(scheme)));
  });

  RegisterRam("dp_ir", [](const SchemeConfig& config)
                  -> StatusOr<std::unique_ptr<RamScheme>> {
    DPSTORE_ASSIGN_OR_RETURN(BackendFactory factory, BackendFactoryFor(config));
    DPSTORE_ASSIGN_OR_RETURN(std::unique_ptr<StorageBackend> backend,
                             MakePublicDatabase(config, factory));
    DpIrOptions options;
    options.epsilon = EffectiveEpsilon(config);
    options.alpha = config.alpha;
    options.seed = config.seed;
    auto scheme = std::make_unique<DpIr>(backend.get(), options);
    std::vector<std::unique_ptr<StorageBackend>> backends;
    backends.push_back(std::move(backend));
    return std::unique_ptr<RamScheme>(std::make_unique<OwnedBackendRam<DpIr>>(
        std::move(backends), std::move(scheme)));
  });

  RegisterRam("multi_server_dp_ir", [](const SchemeConfig& config)
                  -> StatusOr<std::unique_ptr<RamScheme>> {
    DPSTORE_ASSIGN_OR_RETURN(BackendFactory factory, BackendFactoryFor(config));
    std::vector<std::unique_ptr<StorageBackend>> backends;
    std::vector<StorageBackend*> pointers;
    // Protocol width stays D = 2; endpoints beyond that are failover
    // spares the scheme swaps in when an active replica dies.
    const uint64_t replica_count = std::max<uint64_t>(2, config.replicas);
    for (uint64_t replica = 0; replica < replica_count; ++replica) {
      DPSTORE_ASSIGN_OR_RETURN(std::unique_ptr<StorageBackend> backend,
                               MakePublicDatabase(config, factory));
      pointers.push_back(backend.get());
      backends.push_back(std::move(backend));
    }
    MultiServerDpIrOptions options;
    options.num_servers = 2;
    options.epsilon = EffectiveEpsilon(config);
    options.alpha = config.alpha;
    options.seed = config.seed;
    auto scheme =
        std::make_unique<MultiServerDpIr>(std::move(pointers), options);
    return std::unique_ptr<RamScheme>(
        std::make_unique<OwnedBackendRam<MultiServerDpIr>>(std::move(backends),
                                                           std::move(scheme)));
  });

  RegisterRam("dp_ram", [](const SchemeConfig& config)
                  -> StatusOr<std::unique_ptr<RamScheme>> {
    DPSTORE_ASSIGN_OR_RETURN(BackendFactory factory, BackendFactoryFor(config));
    DpRamOptions options;
    options.seed = config.seed;
    options.backend_factory = std::move(factory);
    return std::unique_ptr<RamScheme>(std::make_unique<DpRam>(
        MarkerDatabase(config.n, config.value_size), options));
  });

  RegisterRam("bucket_dp_ram", [](const SchemeConfig& config)
                  -> StatusOr<std::unique_ptr<RamScheme>> {
    DPSTORE_ASSIGN_OR_RETURN(BackendFactory factory, BackendFactoryFor(config));
    std::vector<std::vector<NodeId>> buckets(config.n);
    for (uint64_t i = 0; i < config.n; ++i) buckets[i] = {i};
    BucketDpRamOptions options;
    options.seed = config.seed;
    options.backend_factory = std::move(factory);
    auto ram = std::make_unique<BucketDpRam>(std::move(buckets), config.n,
                                             config.value_size, options);
    DPSTORE_RETURN_IF_ERROR(
        ram->Setup(MarkerDatabase(config.n, config.value_size)));
    return std::unique_ptr<RamScheme>(std::make_unique<BucketDpRamScheme>(
        std::move(ram), config.value_size));
  });

  RegisterRam("linear_oram", [](const SchemeConfig& config)
                  -> StatusOr<std::unique_ptr<RamScheme>> {
    DPSTORE_ASSIGN_OR_RETURN(BackendFactory factory, BackendFactoryFor(config));
    return std::unique_ptr<RamScheme>(std::make_unique<LinearOram>(
        MarkerDatabase(config.n, config.value_size), config.seed, factory));
  });

  RegisterRam("path_oram", [](const SchemeConfig& config)
                  -> StatusOr<std::unique_ptr<RamScheme>> {
    DPSTORE_ASSIGN_OR_RETURN(BackendFactory factory, BackendFactoryFor(config));
    PathOramOptions options;
    options.block_size = config.value_size;
    options.seed = config.seed;
    options.backend_factory = std::move(factory);
    return std::unique_ptr<RamScheme>(std::make_unique<PathOram>(
        MarkerDatabase(config.n, config.value_size), options));
  });

  // The Section 6 discussion's computational-assumption-free variant: the
  // database stays plaintext, the overwrite phase is skipped, and the
  // repertoire is retrieval-only (1-2 blocks, 1 roundtrip per query).
  RegisterRam("dp_ram_retrieval", [](const SchemeConfig& config)
                  -> StatusOr<std::unique_ptr<RamScheme>> {
    DPSTORE_ASSIGN_OR_RETURN(BackendFactory factory, BackendFactoryFor(config));
    DpRamOptions options;
    options.seed = config.seed;
    options.encrypted = false;
    options.backend_factory = std::move(factory);
    return std::unique_ptr<RamScheme>(std::make_unique<DpRam>(
        MarkerDatabase(config.n, config.value_size), options));
  });

  // PIR baselines (read-only repertoire): the Theorem 3.3 errorless floor
  // and the classic two-server information-theoretic construction the
  // paper's introduction contrasts DP-IR against.
  RegisterRam("trivial_pir", [](const SchemeConfig& config)
                  -> StatusOr<std::unique_ptr<RamScheme>> {
    DPSTORE_ASSIGN_OR_RETURN(BackendFactory factory, BackendFactoryFor(config));
    DPSTORE_ASSIGN_OR_RETURN(std::unique_ptr<StorageBackend> backend,
                             MakePublicDatabase(config, factory));
    return std::unique_ptr<RamScheme>(
        std::make_unique<TrivialPirScheme>(std::move(backend)));
  });

  RegisterRam("xor_pir", [](const SchemeConfig& config)
                  -> StatusOr<std::unique_ptr<RamScheme>> {
    return std::unique_ptr<RamScheme>(std::make_unique<XorPirScheme>(
        MarkerDatabase(config.n, config.value_size), config.value_size,
        config.seed));
  });

  RegisterRam("dpf_pir", [](const SchemeConfig& config)
                  -> StatusOr<std::unique_ptr<RamScheme>> {
    DPSTORE_ASSIGN_OR_RETURN(BackendFactory factory0,
                             BackendFactoryFor(config));
    BackendFactory factory1 = factory0;
    if (config.backend == "socket" && !config.socket_path2.empty()) {
      // Replica 1 in its own server process: the two keys of one query
      // really cross into different address spaces.
      SchemeConfig replica1 = config;
      replica1.socket_path = config.socket_path2;
      DPSTORE_ASSIGN_OR_RETURN(factory1, BackendFactoryFor(replica1));
    }
    // Endpoints beyond the active pair are failover spares; they alternate
    // between the two factories so the spare pool spans both server
    // processes when socket_path2 splits the deployment.
    const uint64_t replica_count = std::max<uint64_t>(2, config.replicas);
    std::vector<std::unique_ptr<StorageBackend>> replicas;
    for (uint64_t r = 0; r < replica_count; ++r) {
      DPSTORE_ASSIGN_OR_RETURN(
          std::unique_ptr<StorageBackend> replica,
          MakePublicDatabase(config, r % 2 == 0 ? factory0 : factory1));
      replicas.push_back(std::move(replica));
    }
    return std::unique_ptr<RamScheme>(
        std::make_unique<DpfPirScheme>(std::move(replicas)));
  });

  // The multi-server DP-IR with its real record carried by the DPF eval
  // pair instead of subset planting: same cover-traffic shape, same alpha
  // error branch, sublinear query bytes (see MultiServerDpIrOptions).
  RegisterRam("multi_server_dp_ir_dpf", [](const SchemeConfig& config)
                  -> StatusOr<std::unique_ptr<RamScheme>> {
    DPSTORE_ASSIGN_OR_RETURN(BackendFactory factory, BackendFactoryFor(config));
    std::vector<std::unique_ptr<StorageBackend>> backends;
    std::vector<StorageBackend*> pointers;
    // The DPF path needs exactly 2 ACTIVE replicas; extras are spares.
    const uint64_t replica_count = std::max<uint64_t>(2, config.replicas);
    for (uint64_t replica = 0; replica < replica_count; ++replica) {
      DPSTORE_ASSIGN_OR_RETURN(std::unique_ptr<StorageBackend> backend,
                               MakePublicDatabase(config, factory));
      pointers.push_back(backend.get());
      backends.push_back(std::move(backend));
    }
    MultiServerDpIrOptions options;
    options.num_servers = 2;
    options.epsilon = EffectiveEpsilon(config);
    options.alpha = config.alpha;
    options.seed = config.seed;
    options.use_dpf = true;
    auto scheme =
        std::make_unique<MultiServerDpIr>(std::move(pointers), options);
    return std::unique_ptr<RamScheme>(
        std::make_unique<OwnedBackendRam<MultiServerDpIr>>(std::move(backends),
                                                           std::move(scheme)));
  });

  RegisterRam("tunable_dp_oram", [](const SchemeConfig& config)
                  -> StatusOr<std::unique_ptr<RamScheme>> {
    DPSTORE_ASSIGN_OR_RETURN(BackendFactory factory, BackendFactoryFor(config));
    TunableDpOramOptions options;
    options.block_size = config.value_size;
    options.seed = config.seed;
    options.backend_factory = std::move(factory);
    return std::unique_ptr<RamScheme>(std::make_unique<TunableDpOram>(
        MarkerDatabase(config.n, config.value_size), options));
  });

  // --- KVS repertoire ------------------------------------------------------

  RegisterKvs("dp_kvs", [](const SchemeConfig& config)
                  -> StatusOr<std::unique_ptr<KvsScheme>> {
    DPSTORE_ASSIGN_OR_RETURN(BackendFactory factory, BackendFactoryFor(config));
    DpKvsOptions options;
    options.capacity = config.n;
    options.value_size = config.value_size;
    options.seed = config.seed;
    options.backend_factory = std::move(factory);
    return std::unique_ptr<KvsScheme>(std::make_unique<DpKvs>(options));
  });

  RegisterKvs("oram_kvs", [](const SchemeConfig& config)
                  -> StatusOr<std::unique_ptr<KvsScheme>> {
    DPSTORE_ASSIGN_OR_RETURN(BackendFactory factory, BackendFactoryFor(config));
    OramKvsOptions options;
    options.capacity = config.n;
    options.value_size = config.value_size;
    options.seed = config.seed;
    options.backend_factory = std::move(factory);
    return std::unique_ptr<KvsScheme>(std::make_unique<OramKvs>(options));
  });

  RegisterKvs("cuckoo_oram_kvs", [](const SchemeConfig& config)
                  -> StatusOr<std::unique_ptr<KvsScheme>> {
    DPSTORE_ASSIGN_OR_RETURN(BackendFactory factory, BackendFactoryFor(config));
    CuckooOramKvsOptions options;
    options.capacity = config.n;
    options.value_size = config.value_size;
    options.seed = config.seed;
    options.backend_factory = std::move(factory);
    return std::unique_ptr<KvsScheme>(
        std::make_unique<CuckooOramKvs>(options));
  });
}

}  // namespace dpstore
