#ifndef DPSTORE_CORE_DP_PARAMS_H_
#define DPSTORE_CORE_DP_PARAMS_H_

#include <cstdint>

namespace dpstore {

/// Closed-form parameter conversions and the paper's lower-bound formulas.
/// All bounds are stated in expected *block operations per query*, matching
/// the balls-and-bins accounting of Section 3.

// ---------------------------------------------------------------------------
// DP-IR (Section 5 construction, Theorems 3.3 / 3.4 / 5.1)
// ---------------------------------------------------------------------------

/// Download-set size K for the Algorithm 1 DP-IR at privacy budget `epsilon`
/// and error rate `alpha` over `n` records, using the constant from the
/// *proof* of Theorem 5.1: e^eps = 1 + (1-alpha) n / (alpha K), i.e.
/// K = ceil((1-alpha) n / (alpha (e^eps - 1))), clamped to [1, n].
///
/// Note: the paper's Algorithm 1 pseudocode drops the alpha factor in the
/// denominator (K = ceil((1-alpha) n / (e^eps - 1))); that variant is exposed
/// below for the E12 ablation. Both give K = Theta(n / e^eps).
uint64_t DpIrBlocksPerQuery(uint64_t n, double epsilon, double alpha);

/// The pseudocode variant (Appendix G constant).
uint64_t DpIrBlocksPerQueryPseudocode(uint64_t n, double epsilon,
                                      double alpha);

/// The exact pure-DP budget achieved by Algorithm 1 with download-set size K
/// and error alpha (from the proof of Theorem 5.1):
/// eps = ln(1 + (1-alpha) n / (alpha K)).
double DpIrAchievedEpsilon(uint64_t n, uint64_t k, double alpha);

/// Theorem 3.3: an errorless (eps,delta)-DP-IR performs at least
/// (1-delta) n expected operations - for every eps.
double DpIrErrorlessLowerBound(uint64_t n, double delta);

/// Theorem 3.4: an (eps,delta)-DP-IR with error alpha performs at least
/// (n-1)(1-alpha-delta)/e^eps expected operations.
double DpIrLowerBound(uint64_t n, double epsilon, double alpha, double delta);

// ---------------------------------------------------------------------------
// DP-RAM (Theorem 3.7, Theorem 6.1)
// ---------------------------------------------------------------------------

/// Theorem 3.7: an eps-DP-RAM with error alpha and client storage for c >= 2
/// blocks performs Omega(log_c((1-alpha) n / e^eps)) expected amortized
/// operations per query. Returns max(0, that log).
double DpRamLowerBound(uint64_t n, double epsilon, double alpha, uint64_t c);

/// Upper bound on the budget of the Section 6 DP-RAM with stash probability
/// p, from wrapping up the proof of Theorem 6.1: the transcript ratio of
/// adjacent sequences differs at <= 3 positions, each contributing at most
/// n^2/p (Lemma 6.4) times n/p (Lemma 6.5), so
/// eps <= 3 ln(n^2/p) + 3 ln(n/p) = O(log n) for p = Phi(n)/n.
double DpRamEpsilonUpperBound(uint64_t n, double p);

/// Minimum privacy budget a scheme with `overhead` blocks/query can have by
/// Theorem 3.7 (inverting the lower bound): eps >= ln((1-alpha) n) -
/// overhead ln(c). Returns max(0, that).
double DpRamMinEpsilonForOverhead(uint64_t n, double overhead, double alpha,
                                  uint64_t c);

// ---------------------------------------------------------------------------
// Multi-server DP-IR (Theorem C.1)
// ---------------------------------------------------------------------------

/// Theorem C.1: a D-server (eps,delta)-DP-IR with error alpha against an
/// adversary corrupting fraction t of servers performs at least
/// ((1-alpha) t - delta)(n-1)/e^eps expected operations.
double MultiServerDpIrLowerBound(uint64_t n, double epsilon, double alpha,
                                 double delta, double t);

// ---------------------------------------------------------------------------
// Composition and misc.
// ---------------------------------------------------------------------------

/// Basic sequential composition: k mechanisms at eps each are k*eps-DP.
double ComposeEpsilon(double epsilon, uint64_t k);

/// The strawman of Section 4 is (Theta(log n), delta)-DP only for
/// delta >= (n-1)/n. Returns that delta floor.
double StrawmanDeltaFloor(uint64_t n);

}  // namespace dpstore

#endif  // DPSTORE_CORE_DP_PARAMS_H_
