#include "core/strawman_ir.h"

#include <vector>

namespace dpstore {

StrawmanIr::StrawmanIr(StorageBackend* server, uint64_t seed)
    : server_(server), rng_(seed) {
  DPSTORE_CHECK(server != nullptr);
}

StatusOr<Block> StrawmanIr::Query(BlockId index) {
  const uint64_t n = server_->n();
  if (index >= n) return OutOfRangeError("StrawmanIr::Query out of range");
  server_->BeginQuery();
  std::vector<uint64_t> download_set;
  download_set.push_back(index);
  const double p = 1.0 / static_cast<double>(n);
  for (uint64_t j = 0; j < n; ++j) {
    if (j != index && rng_.Bernoulli(p)) download_set.push_back(j);
  }
  rng_.Shuffle(&download_set);
  DPSTORE_ASSIGN_OR_RETURN(std::vector<Block> blocks,
                           server_->DownloadMany(download_set));
  Block result;
  for (size_t i = 0; i < download_set.size(); ++i) {
    if (download_set[i] == index) result = std::move(blocks[i]);
  }
  return result;
}

StatusOr<std::optional<Block>> StrawmanIr::QueryRead(BlockId id) {
  DPSTORE_ASSIGN_OR_RETURN(Block value, Query(id));
  return std::optional<Block>(std::move(value));
}

}  // namespace dpstore
