#include "core/dp_kvs.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/dp_ram.h"

namespace dpstore {

// ---------------------------------------------------------------------------
// NodeCodec
// ---------------------------------------------------------------------------

namespace {
constexpr size_t kFlagBytes = 1;
constexpr size_t kKeyBytes = 8;
}  // namespace

NodeCodec::NodeCodec(uint64_t slots_per_node, size_t value_size)
    : slots_per_node_(slots_per_node), value_size_(value_size) {
  DPSTORE_CHECK_GT(slots_per_node, 0u);
  node_size_ = static_cast<size_t>(slots_per_node) *
               (kFlagBytes + kKeyBytes + value_size);
}

size_t NodeCodec::SlotOffset(uint64_t slot) const {
  DPSTORE_CHECK_LT(slot, slots_per_node_);
  return static_cast<size_t>(slot) * (kFlagBytes + kKeyBytes + value_size_);
}

bool NodeCodec::SlotOccupied(const Block& node, uint64_t slot) const {
  DPSTORE_CHECK_EQ(node.size(), node_size_);
  return node[SlotOffset(slot)] != 0;
}

uint64_t NodeCodec::SlotKey(const Block& node, uint64_t slot) const {
  DPSTORE_CHECK_EQ(node.size(), node_size_);
  uint64_t key;
  std::memcpy(&key, node.data() + SlotOffset(slot) + kFlagBytes, kKeyBytes);
  return key;
}

std::vector<uint8_t> NodeCodec::SlotValue(const Block& node,
                                          uint64_t slot) const {
  DPSTORE_CHECK_EQ(node.size(), node_size_);
  size_t off = SlotOffset(slot) + kFlagBytes + kKeyBytes;
  return std::vector<uint8_t>(node.begin() + off,
                              node.begin() + off + value_size_);
}

void NodeCodec::SetSlot(Block* node, uint64_t slot, uint64_t key,
                        const std::vector<uint8_t>& value) const {
  DPSTORE_CHECK_EQ(node->size(), node_size_);
  DPSTORE_CHECK_EQ(value.size(), value_size_);
  size_t off = SlotOffset(slot);
  (*node)[off] = 1;
  std::memcpy(node->data() + off + kFlagBytes, &key, kKeyBytes);
  std::memcpy(node->data() + off + kFlagBytes + kKeyBytes, value.data(),
              value_size_);
}

void NodeCodec::ClearSlot(Block* node, uint64_t slot) const {
  DPSTORE_CHECK_EQ(node->size(), node_size_);
  size_t off = SlotOffset(slot);
  std::memset(node->data() + off, 0, kFlagBytes + kKeyBytes + value_size_);
}

std::optional<uint64_t> NodeCodec::FindKey(const Block& node,
                                           uint64_t key) const {
  for (uint64_t s = 0; s < slots_per_node_; ++s) {
    if (SlotOccupied(node, s) && SlotKey(node, s) == key) return s;
  }
  return std::nullopt;
}

std::optional<uint64_t> NodeCodec::FindFree(const Block& node) const {
  for (uint64_t s = 0; s < slots_per_node_; ++s) {
    if (!SlotOccupied(node, s)) return s;
  }
  return std::nullopt;
}

uint64_t NodeCodec::OccupiedCount(const Block& node) const {
  uint64_t count = 0;
  for (uint64_t s = 0; s < slots_per_node_; ++s) {
    if (SlotOccupied(node, s)) ++count;
  }
  return count;
}

// ---------------------------------------------------------------------------
// DpKvs
// ---------------------------------------------------------------------------

namespace {

uint64_t DefaultSuperRootCapacity(uint64_t n) {
  double log_n = std::log2(static_cast<double>(n) + 1.0);
  return std::max<uint64_t>(
      16, static_cast<uint64_t>(std::ceil(std::pow(log_n, 1.5))));
}

crypto::PrfKey DerivePrfKey(Rng* rng) {
  crypto::PrfKey key;
  for (size_t i = 0; i < key.size(); i += 8) {
    uint64_t x = rng->NextUint64();
    std::memcpy(key.data() + i, &x, 8);
  }
  return key;
}

}  // namespace

DpKvs::DpKvs(DpKvsOptions options)
    : options_(options),
      geometry_(BucketTreeGeometry::ForCapacity(options.capacity)),
      codec_(options.node_slots, options.value_size),
      rng_(options.seed) {
  prf_key1_ = DerivePrfKey(&rng_);
  prf_key2_ = DerivePrfKey(&rng_);
  super_root_capacity_ = options_.super_root_capacity != 0
                             ? options_.super_root_capacity
                             : DefaultSuperRootCapacity(options_.capacity);

  std::vector<std::vector<NodeId>> buckets(geometry_.num_leaves());
  for (uint64_t leaf = 0; leaf < geometry_.num_leaves(); ++leaf) {
    buckets[leaf] = geometry_.Path(leaf);
  }
  BucketDpRamOptions ram_options;
  ram_options.stash_probability = options_.stash_probability;
  ram_options.seed = rng_.NextUint64();
  ram_options.backend_factory = options_.backend_factory;
  bucket_ram_ = std::make_unique<BucketDpRam>(
      std::move(buckets), geometry_.total_nodes(), codec_.node_size(),
      ram_options);
  DPSTORE_CHECK_OK(bucket_ram_->SetupZero());
}

std::pair<uint64_t, uint64_t> DpKvs::Choices(Key key) const {
  return {crypto::PrfMod(prf_key1_, key, geometry_.num_leaves()),
          crypto::PrfMod(prf_key2_, key, geometry_.num_leaves())};
}

Status DpKvs::BulkLoad(const std::vector<std::pair<Key, Value>>& items) {
  if (size_ != 0) {
    return FailedPreconditionError("BulkLoad requires an empty store");
  }
  std::vector<Block> nodes(geometry_.total_nodes(),
                           ZeroBlock(codec_.node_size()));
  std::unordered_map<Key, bool> seen;
  seen.reserve(items.size());
  uint64_t placed = 0;
  for (const auto& [key, value] : items) {
    if (value.size() != options_.value_size) {
      return InvalidArgumentError("BulkLoad: value size mismatch");
    }
    if (!seen.emplace(key, true).second) {
      return InvalidArgumentError("BulkLoad: duplicate key");
    }
    auto [l1, l2] = Choices(key);
    auto path1 = geometry_.Path(l1);
    auto path2 = geometry_.Path(l2);
    bool stored = false;
    for (size_t h = 0; h < path1.size() && !stored; ++h) {
      if (auto slot = codec_.FindFree(nodes[path1[h]]); slot.has_value()) {
        codec_.SetSlot(&nodes[path1[h]], *slot, key, value);
        stored = true;
        break;
      }
      if (l1 != l2) {
        if (auto slot = codec_.FindFree(nodes[path2[h]]); slot.has_value()) {
          codec_.SetSlot(&nodes[path2[h]], *slot, key, value);
          stored = true;
          break;
        }
      }
    }
    if (!stored) {
      if (super_root_.size() >= super_root_capacity_) {
        return ResourceExhaustedError("BulkLoad: super root overflow");
      }
      super_root_[key] = value;
      super_root_peak_ =
          std::max<uint64_t>(super_root_peak_, super_root_.size());
    }
    ++placed;
  }
  DPSTORE_RETURN_IF_ERROR(bucket_ram_->Setup(nodes));
  size_ = placed;
  return OkStatus();
}

StatusOr<DpKvs::Snapshot> DpKvs::ReadBoth(Key key) {
  Snapshot snap;
  auto [l1, l2] = Choices(key);
  snap.leaf1 = l1;
  snap.same_choice = (l1 == l2);
  // Pi(u) smaller than k(n)=2: pad with a uniformly random dummy bucket so
  // every query touches exactly two buckets (Section 7.1).
  snap.leaf2 = snap.same_choice ? rng_.Uniform(geometry_.num_leaves()) : l2;
  DPSTORE_ASSIGN_OR_RETURN(snap.content1, bucket_ram_->ReadBucket(snap.leaf1));
  DPSTORE_ASSIGN_OR_RETURN(snap.content2, bucket_ram_->ReadBucket(snap.leaf2));
  return snap;
}

StatusOr<std::optional<DpKvs::Value>> DpKvs::Get(Key key) {
  DPSTORE_ASSIGN_OR_RETURN(Snapshot snap, ReadBoth(key));
  // Search the real path(s). The dummy pad bucket never holds `key` by
  // construction of the storing algorithm, searching it anyway is harmless.
  for (const std::vector<Block>* content : {&snap.content1, &snap.content2}) {
    for (const Block& node : *content) {
      if (auto slot = codec_.FindKey(node, key); slot.has_value()) {
        return std::optional<Value>(codec_.SlotValue(node, *slot));
      }
    }
  }
  if (auto it = super_root_.find(key); it != super_root_.end()) {
    return std::optional<Value>(it->second);
  }
  return std::optional<Value>();  // perp: key never stored
}

Status DpKvs::WriteBoth(const Snapshot& snap,
                        std::optional<uint64_t> target_leaf,
                        std::optional<uint64_t> target_path_index,
                        const std::function<void(Block*)>& edit) {
  // One real update (when a target node exists) and fake updates elsewhere;
  // fresh re-encryption makes them outwardly identical.
  auto make_mutator = [&](uint64_t leaf) -> BucketDpRam::MutateFn {
    if (target_leaf.has_value() && *target_leaf == leaf) {
      uint64_t index = *target_path_index;
      return [&edit, index](std::vector<Block>* content) {
        edit(&(*content)[index]);
      };
    }
    return [](std::vector<Block>*) {};
  };
  DPSTORE_RETURN_IF_ERROR(
      bucket_ram_->WriteBucket(snap.leaf1, make_mutator(snap.leaf1)));
  // If both queried buckets are the same leaf, the second write must be a
  // fake one (the first already applied the edit).
  BucketDpRam::MutateFn second = snap.leaf2 == snap.leaf1
                                     ? BucketDpRam::MutateFn(
                                           [](std::vector<Block>*) {})
                                     : make_mutator(snap.leaf2);
  return bucket_ram_->WriteBucket(snap.leaf2, second);
}

Status DpKvs::Put(Key key, const Value& value) {
  if (value.size() != options_.value_size) {
    return InvalidArgumentError("Put: value size mismatch");
  }
  DPSTORE_ASSIGN_OR_RETURN(Snapshot snap, ReadBoth(key));

  // Locate an existing copy of `key` along the real path(s).
  std::optional<uint64_t> target_leaf;
  std::optional<uint64_t> target_index;
  std::optional<uint64_t> target_slot;
  auto search = [&](uint64_t leaf, const std::vector<Block>& content,
                    bool real) {
    if (!real || target_leaf.has_value()) return;
    for (size_t k = 0; k < content.size(); ++k) {
      if (auto slot = codec_.FindKey(content[k], key); slot.has_value()) {
        target_leaf = leaf;
        target_index = k;
        target_slot = *slot;
        return;
      }
    }
  };
  search(snap.leaf1, snap.content1, true);
  search(snap.leaf2, snap.content2, !snap.same_choice);

  bool fresh_insert = false;
  if (!target_leaf.has_value()) {
    if (auto it = super_root_.find(key); it != super_root_.end()) {
      // Update in the client super root; both bucket writes are fake.
      it->second = value;
      return WriteBoth(snap, std::nullopt, std::nullopt, nullptr);
    }
    // Storing algorithm S: lowest-height node with a free slot along either
    // path (paths are ordered leaf -> root, i.e. by increasing height).
    for (size_t h = 0; h < snap.content1.size() && !target_leaf.has_value();
         ++h) {
      if (auto slot = codec_.FindFree(snap.content1[h]); slot.has_value()) {
        target_leaf = snap.leaf1;
        target_index = h;
        target_slot = *slot;
        break;
      }
      if (!snap.same_choice) {
        if (auto slot = codec_.FindFree(snap.content2[h]); slot.has_value()) {
          target_leaf = snap.leaf2;
          target_index = h;
          target_slot = *slot;
          break;
        }
      }
    }
    if (!target_leaf.has_value()) {
      // Both paths full: overflow into the super root (Theorem 7.2 bounds
      // its load by Phi(n) except with negligible probability).
      if (super_root_.size() >= super_root_capacity_) {
        return ResourceExhaustedError(
            "DpKvs super root overflow (negligible-probability event; "
            "increase capacity or super_root_capacity)");
      }
      super_root_[key] = value;
      super_root_peak_ =
          std::max<uint64_t>(super_root_peak_, super_root_.size());
      ++size_;
      return WriteBoth(snap, std::nullopt, std::nullopt, nullptr);
    }
    fresh_insert = true;
  }

  uint64_t slot = *target_slot;
  const NodeCodec& codec = codec_;
  Status status = WriteBoth(snap, target_leaf, target_index,
                            [&codec, slot, key, &value](Block* node) {
                              codec.SetSlot(node, slot, key, value);
                            });
  if (status.ok() && fresh_insert) ++size_;
  return status;
}

Status DpKvs::Erase(Key key) {
  DPSTORE_ASSIGN_OR_RETURN(Snapshot snap, ReadBoth(key));

  std::optional<uint64_t> target_leaf;
  std::optional<uint64_t> target_index;
  std::optional<uint64_t> target_slot;
  auto search = [&](uint64_t leaf, const std::vector<Block>& content,
                    bool real) {
    if (!real || target_leaf.has_value()) return;
    for (size_t k = 0; k < content.size(); ++k) {
      if (auto slot = codec_.FindKey(content[k], key); slot.has_value()) {
        target_leaf = leaf;
        target_index = k;
        target_slot = *slot;
        return;
      }
    }
  };
  search(snap.leaf1, snap.content1, true);
  search(snap.leaf2, snap.content2, !snap.same_choice);

  bool existed = target_leaf.has_value();
  if (!existed) {
    size_t erased = super_root_.erase(key);
    if (erased > 0) --size_;
    // Access shape stays identical whether or not the key existed.
    return WriteBoth(snap, std::nullopt, std::nullopt, nullptr);
  }

  uint64_t slot = *target_slot;
  const NodeCodec& codec = codec_;
  Status status = WriteBoth(snap, target_leaf, target_index,
                            [&codec, slot](Block* node) {
                              codec.ClearSlot(node, slot);
                            });
  if (status.ok()) --size_;
  return status;
}

}  // namespace dpstore
