#include "core/dp_ram.h"

#include <cmath>

#include "core/dp_params.h"
#include "crypto/prg.h"

namespace dpstore {

double DefaultStashProbability(uint64_t n) {
  DPSTORE_CHECK_GT(n, 0u);
  double log_n = std::log2(static_cast<double>(n) + 1.0);
  double phi = std::ceil(std::pow(log_n, 1.5));
  double p = phi / static_cast<double>(n);
  return p < 1.0 ? p : 1.0;
}

DpRam::DpRam(std::vector<Block> database, DpRamOptions options)
    : n_(database.size()), options_(options), rng_(options.seed) {
  DPSTORE_CHECK_GT(n_, 0u);
  record_size_ = database[0].size();
  for (const Block& b : database) {
    DPSTORE_CHECK_EQ(b.size(), record_size_) << "ragged database";
  }
  if (options_.stash_probability <= 0.0) {
    options_.stash_probability = DefaultStashProbability(n_);
  }
  DPSTORE_CHECK_LE(options_.stash_probability, 1.0);

  size_t server_block_size =
      options_.encrypted ? crypto::Cipher::CiphertextSize(record_size_)
                         : record_size_;
  server_ = MakeBackend(options_.backend_factory, n_, server_block_size);
  if (options_.encrypted) {
    cipher_ = std::make_unique<crypto::Cipher>(crypto::RandomChaChaKey());
  }

  // Algorithm 2 (Setup): A[i] <- Enc(K, B_i); stash each record w.p. p.
  std::vector<Block> array(n_);
  for (uint64_t i = 0; i < n_; ++i) {
    array[i] = options_.encrypted ? cipher_->EncryptCopy(database[i])
                                  : database[i];
    if (rng_.Bernoulli(options_.stash_probability)) {
      stash_.Put(i, database[i]);
    }
  }
  DPSTORE_CHECK_OK(server_->SetArray(std::move(array)));
}

double DpRam::epsilon_upper_bound() const {
  return DpRamEpsilonUpperBound(n_, options_.stash_probability);
}

double DpRam::BlocksPerQueryExpected() const {
  if (options_.encrypted) return 3.0;  // 2 downloads + 1 upload, always
  return 1.0;  // retrieval-only: download phase only
}

Status DpRam::UploadRecord(BlockId index, BlockView record) {
  if (!options_.encrypted) return server_->Upload(index, ToBlock(record));
  // Stage the plaintext inside the upload payload slot and encrypt in
  // place: the record is encrypted exactly once, directly in the exchange
  // buffer, with no intermediate ciphertext vector.
  BlockBuffer payload =
      BlockBuffer::Uninitialized(1, crypto::Cipher::CiphertextSize(
                                        record.size()));
  MutableBlockView slot = payload.Mutable(0);
  CopyBytes(slot.data() + crypto::Cipher::PlaintextOffset(), record.data(),
            record.size());
  cipher_->EncryptInPlace(slot);
  return server_
      ->Exchange(StorageRequest::UploadOf({index}, std::move(payload)))
      .status();
}

StatusOr<Block> DpRam::DecodeRecord(Block server_block) const {
  if (!options_.encrypted) return server_block;
  return cipher_->Decrypt(server_block);
}

StatusOr<Block> DpRam::Read(BlockId index) {
  return Query(index, Op::kRead, nullptr);
}

StatusOr<std::optional<Block>> DpRam::QueryRead(BlockId index) {
  DPSTORE_ASSIGN_OR_RETURN(Block value, Read(index));
  return std::optional<Block>(std::move(value));
}

Status DpRam::Write(BlockId index, Block value) {
  if (!options_.encrypted) {
    return FailedPreconditionError(
        "DpRam configured retrieval-only (encrypted=false)");
  }
  if (value.size() != record_size_) {
    return InvalidArgumentError("Write: record size mismatch");
  }
  DPSTORE_ASSIGN_OR_RETURN(Block unused, Query(index, Op::kWrite, &value));
  (void)unused;
  return OkStatus();
}

StatusOr<Block> DpRam::Query(BlockId index, Op op, const Block* new_value) {
  if (index >= n_) return OutOfRangeError("DpRam::Query index out of range");
  server_->BeginQuery();

  // Client-state mutations (stash insert/remove) are deferred until every
  // server operation has succeeded, so a mid-query server fault rolls back
  // cleanly instead of dropping the only up-to-date copy of a record.

  // Both phases' download addresses depend only on client coins, so the
  // query is one batched download exchange (a single roundtrip) followed by
  // one fire-and-forget upload.

  // --- Download phase address (Algorithm 3) ---
  // If the record is stashed, download a uniformly random slot as a dummy so
  // the access pattern is index-independent in this branch.
  const bool was_stashed = stash_.Contains(index);
  const BlockId download_addr = was_stashed ? rng_.Uniform(n_) : index;

  // Retrieval-only mode skips the overwrite phase entirely (Section 6
  // discussion): no upload, no stash re-insertion, no encryption needed.
  // The stash entry (if any) is consumed, matching Algorithm 3's download
  // phase with the overwrite phase deleted.
  if (!options_.encrypted) {
    DPSTORE_ASSIGN_OR_RETURN(Block raw, server_->Download(download_addr));
    Block current = was_stashed ? *stash_.Get(index) : std::move(raw);
    if (op == Op::kWrite) current = *new_value;
    if (was_stashed) stash_.Take(index);
    return current;
  }

  // --- Overwrite phase address (Algorithm 3) ---
  // Stash branch: re-randomize a uniformly random slot o (which may equal
  // `index`; the stale server copy stays stale, which is fine because the
  // stash copy is authoritative while `index` is stashed). Write-back
  // branch: download-and-discard the record's own slot so the transcript
  // shape is identical across branches.
  const bool stash_coin = rng_.Bernoulli(options_.stash_probability);
  const BlockId overwrite_addr = stash_coin ? rng_.Uniform(n_) : index;

  // One batched exchange; both ciphertexts live in the flat reply buffer
  // and are decrypted IN PLACE there — no per-block vectors anywhere.
  DPSTORE_ASSIGN_OR_RETURN(
      StorageReply reply,
      server_->Exchange(
          StorageRequest::DownloadOf({download_addr, overwrite_addr})));
  Block current;
  if (was_stashed) {
    current = *stash_.Get(index);
  } else {
    DPSTORE_ASSIGN_OR_RETURN(MutableBlockView plain,
                             cipher_->DecryptInPlace(reply.blocks.Mutable(0)));
    current = ToBlock(plain);
  }
  if (op == Op::kWrite) current = *new_value;

  if (stash_coin) {
    // Re-encrypt slot o's server copy with fresh randomness.
    DPSTORE_ASSIGN_OR_RETURN(MutableBlockView plain,
                             cipher_->DecryptInPlace(reply.blocks.Mutable(1)));
    DPSTORE_RETURN_IF_ERROR(UploadRecord(overwrite_addr, plain));
    stash_.Put(index, current);  // commit
  } else {
    // Write the current version back to its own slot (slot 1 discarded).
    DPSTORE_RETURN_IF_ERROR(UploadRecord(overwrite_addr, current));
    if (was_stashed) stash_.Take(index);  // commit removal
  }
  return current;
}

}  // namespace dpstore
