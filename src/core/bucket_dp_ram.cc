#include "core/bucket_dp_ram.h"

#include <algorithm>

#include "core/dp_ram.h"
#include "crypto/prg.h"

namespace dpstore {

BucketDpRam::BucketDpRam(std::vector<std::vector<NodeId>> buckets,
                         uint64_t num_nodes, size_t node_size,
                         BucketDpRamOptions options)
    : buckets_(std::move(buckets)),
      num_nodes_(num_nodes),
      node_size_(node_size),
      options_(options),
      cipher_(crypto::RandomChaChaKey()),
      rng_(options.seed) {
  DPSTORE_CHECK(!buckets_.empty());
  DPSTORE_CHECK_GT(num_nodes_, 0u);
  // Privacy requires a homogeneous repertoire: every bucket moves the same
  // number of nodes, so bucket identity cannot leak through transcript size.
  const size_t arity = buckets_[0].size();
  for (const auto& bucket : buckets_) {
    DPSTORE_CHECK_EQ(bucket.size(), arity) << "buckets must have equal size";
    for (NodeId node : bucket) DPSTORE_CHECK_LT(node, num_nodes_);
  }
  if (options_.stash_probability <= 0.0) {
    options_.stash_probability = DefaultStashProbability(buckets_.size());
  }
  DPSTORE_CHECK_LE(options_.stash_probability, 1.0);
  server_ = MakeBackend(options_.backend_factory, num_nodes_,
                        crypto::Cipher::CiphertextSize(node_size_));
}

Status BucketDpRam::Setup(const std::vector<Block>& node_plaintexts) {
  if (node_plaintexts.size() != num_nodes_) {
    return InvalidArgumentError("Setup: wrong node count");
  }
  std::vector<Block> array(num_nodes_);
  for (uint64_t i = 0; i < num_nodes_; ++i) {
    if (node_plaintexts[i].size() != node_size_) {
      return InvalidArgumentError("Setup: node size mismatch");
    }
    array[i] = cipher_.EncryptCopy(node_plaintexts[i]);
  }
  return server_->SetArray(std::move(array));
}

Status BucketDpRam::SetupZero() {
  return Setup(std::vector<Block>(num_nodes_, ZeroBlock(node_size_)));
}

StatusOr<std::vector<Block>> BucketDpRam::ReadBucket(uint64_t bucket) {
  return Query(bucket, nullptr);
}

Status BucketDpRam::WriteBucket(uint64_t bucket, const MutateFn& mutate) {
  DPSTORE_ASSIGN_OR_RETURN(std::vector<Block> unused, Query(bucket, &mutate));
  (void)unused;
  return OkStatus();
}

void BucketDpRam::StashBucket(uint64_t bucket,
                              const std::vector<Block>& content) {
  stashed_buckets_.insert(bucket);
  peak_stashed_ = std::max(peak_stashed_, stashed_buckets_.size());
  const auto& nodes = buckets_[bucket];
  for (size_t k = 0; k < nodes.size(); ++k) {
    overlay_[nodes[k]] = content[k];
    ++overlay_refcount_[nodes[k]];
  }
}

std::vector<Block> BucketDpRam::UnstashBucket(uint64_t bucket) {
  const auto& nodes = buckets_[bucket];
  std::vector<Block> content(nodes.size());
  for (size_t k = 0; k < nodes.size(); ++k) {
    auto it = overlay_.find(nodes[k]);
    DPSTORE_CHECK(it != overlay_.end())
        << "stashed bucket " << bucket << " missing overlay node "
        << nodes[k];
    content[k] = it->second;
    auto rc = overlay_refcount_.find(nodes[k]);
    DPSTORE_CHECK(rc != overlay_refcount_.end());
    if (--rc->second == 0) {
      overlay_refcount_.erase(rc);
      overlay_.erase(it);
    }
  }
  stashed_buckets_.erase(bucket);
  return content;
}

StatusOr<Block> BucketDpRam::PeekNode(NodeId node) const {
  DPSTORE_CHECK_LT(node, num_nodes_);
  auto it = overlay_.find(node);
  if (it != overlay_.end()) return it->second;
  return cipher_.Decrypt(server_->PeekBlock(node));
}

StatusOr<std::vector<Block>> BucketDpRam::Query(uint64_t bucket,
                                                const MutateFn* mutate) {
  if (bucket >= buckets_.size()) {
    return OutOfRangeError("BucketDpRam::Query bucket out of range");
  }
  server_->BeginQuery();
  const auto& nodes = buckets_[bucket];
  const size_t arity = nodes.size();

  // Client-state mutations (stash/overlay) are deferred until all server
  // operations succeed so that a mid-query fault rolls back cleanly (same
  // discipline as DpRam::Query).

  // Both phases' bucket choices depend only on client coins, so the 2s
  // downloads ride one batched exchange (a single roundtrip) and the s
  // uploads one batched write-back.

  // Download phase: the bucket itself, or a uniformly random dummy bucket
  // when the queried bucket is stashed (it is then served from the overlay).
  const bool was_stashed = stashed_buckets_.contains(bucket);
  const uint64_t download_bucket =
      was_stashed ? rng_.Uniform(buckets_.size()) : bucket;
  // Overwrite phase: re-randomize a uniformly random bucket (stash branch)
  // or download-and-discard the bucket's own nodes before the write-back
  // (keeping the transcript shape identical across branches).
  const bool stash_coin = rng_.Bernoulli(options_.stash_probability);
  const uint64_t overwrite_bucket =
      stash_coin ? rng_.Uniform(buckets_.size()) : bucket;

  std::vector<BlockId> download_addrs;
  download_addrs.reserve(2 * arity);
  for (NodeId node : buckets_[download_bucket]) download_addrs.push_back(node);
  for (NodeId node : buckets_[overwrite_bucket])
    download_addrs.push_back(node);
  // Both phases' 2s ciphertexts arrive in one flat reply buffer and are
  // decrypted in place there; only the bucket's logical content (and the
  // overlay copies) are ever materialized as owned blocks.
  DPSTORE_ASSIGN_OR_RETURN(
      StorageReply reply,
      server_->Exchange(StorageRequest::DownloadOf(download_addrs)));

  std::vector<Block> content(arity);
  if (was_stashed) {
    for (size_t k = 0; k < arity; ++k) {
      auto it = overlay_.find(nodes[k]);
      DPSTORE_CHECK(it != overlay_.end())
          << "stashed bucket " << bucket << " missing overlay node "
          << nodes[k];
      content[k] = it->second;
    }
  } else {
    for (size_t k = 0; k < arity; ++k) {
      // Appendix E: a node shared with a stashed bucket is served from the
      // client copy, not the (stale) server copy.
      auto it = overlay_.find(nodes[k]);
      if (it != overlay_.end()) {
        content[k] = it->second;
      } else {
        DPSTORE_ASSIGN_OR_RETURN(
            MutableBlockView plain,
            cipher_.DecryptInPlace(reply.blocks.Mutable(k)));
        content[k] = ToBlock(plain);
      }
    }
  }

  if (mutate != nullptr) {
    (*mutate)(&content);
    DPSTORE_CHECK_EQ(content.size(), arity) << "mutate changed bucket arity";
    for (const Block& b : content) DPSTORE_CHECK_EQ(b.size(), node_size_);
  }

  // --- Overwrite phase write-back ---
  // Fresh ciphertexts are staged and encrypted IN PLACE inside the flat
  // upload payload: the s-node write-back costs one buffer, not s vectors.
  const auto& overwrite_nodes = buckets_[overwrite_bucket];
  const size_t ct_size = crypto::Cipher::CiphertextSize(node_size_);
  BlockBuffer fresh = BlockBuffer::Uninitialized(arity, ct_size);
  if (stash_coin) {
    // Re-encrypt the overwrite bucket's server copies verbatim (possibly
    // stale; staleness is tracked by the overlay, so that is correct).
    for (size_t k = 0; k < arity; ++k) {
      DPSTORE_ASSIGN_OR_RETURN(
          MutableBlockView plain,
          cipher_.DecryptInPlace(reply.blocks.Mutable(arity + k)));
      MutableBlockView slot = fresh.Mutable(k);
      CopyBytes(slot.data() + crypto::Cipher::PlaintextOffset(), plain.data(),
                plain.size());
      cipher_.EncryptInPlace(slot);
    }
  } else {
    for (size_t k = 0; k < arity; ++k) {
      MutableBlockView slot = fresh.Mutable(k);
      CopyBytes(slot.data() + crypto::Cipher::PlaintextOffset(),
                content[k].data(), content[k].size());
      cipher_.EncryptInPlace(slot);
    }
  }
  DPSTORE_RETURN_IF_ERROR(
      server_
          ->Exchange(StorageRequest::UploadOf(overwrite_nodes,
                                              std::move(fresh)))
          .status());

  // --- Commit client state ---
  if (stash_coin) {
    // (Re-)stash the bucket with its current content.
    if (was_stashed) {
      for (size_t k = 0; k < arity; ++k) overlay_[nodes[k]] = content[k];
    } else {
      StashBucket(bucket, content);
    }
  } else {
    // The write-back reached the server; update client copies of shared
    // nodes (Appendix E requires the write to reach stashed overlapping
    // buckets), then drop this bucket from the stash.
    for (size_t k = 0; k < arity; ++k) {
      auto it = overlay_.find(nodes[k]);
      if (it != overlay_.end()) it->second = content[k];
    }
    if (was_stashed) UnstashBucket(bucket);
  }
  return content;
}

}  // namespace dpstore
