// Experiment E1 (Theorem 3.3): an errorless DP-IR must operate on
// (1-delta) n blocks regardless of the privacy budget - there is no
// privacy/efficiency trade-off without error. We measure the only errorless
// instantiations (full-scan DP-IR with alpha=0, trivial PIR) across n and
// print measured blocks/query against the (1-delta) n floor.
#include <cmath>
#include <iostream>

#include "bench_json.h"

#include "core/dp_ir.h"
#include "core/dp_params.h"
#include "pir/trivial_pir.h"
#include "storage/server.h"
#include "util/table.h"

namespace dpstore {
namespace {

void Run() {
  PrintBanner(std::cout,
              "E1 / Theorem 3.3: errorless DP-IR touches the whole database");
  TablePrinter table({"n", "epsilon", "lower_bound(1-delta)n",
                      "dpir_alpha0_blocks", "trivial_pir_blocks",
                      "matches_floor"});
  for (uint64_t log_n = 10; log_n <= 16; log_n += 2) {
    uint64_t n = uint64_t{1} << log_n;
    StorageServer server(n, 32);
    // Even an enormous budget does not help: pick eps = 2 log n.
    double eps = 2.0 * std::log(static_cast<double>(n));
    DpIrOptions options;
    options.epsilon = eps;
    options.alpha = 0.0;  // errorless
    DpIr ir(&server, options);
    DPSTORE_CHECK_OK(ir.Query(0).status());
    uint64_t dpir_blocks = server.transcript().download_count();

    server.ResetTranscript();
    TrivialPir pir(&server);
    DPSTORE_CHECK_OK(pir.Query(0).status());
    uint64_t pir_blocks = server.transcript().download_count();

    double floor = DpIrErrorlessLowerBound(n, /*delta=*/0.0);
    table.AddRow()
        .AddUint(n)
        .AddDouble(eps, 2)
        .AddDouble(floor, 0)
        .AddUint(dpir_blocks)
        .AddUint(pir_blocks)
        .AddCell(dpir_blocks >= floor ? "yes" : "NO");
  }
  table.Print(std::cout);
  std::cout << "\nPaper claim: every errorless (eps,delta)-DP-IR performs\n"
               ">= (1-delta) n expected operations for all eps (Thm 3.3).\n"
               "Measured: the errorless construction downloads exactly n\n"
               "blocks at every n, independent of the budget.\n";
}

}  // namespace
}  // namespace dpstore

int main() {
  dpstore::bench::BenchJson json("dpir_errorless");
  dpstore::Run();
  json.Emit();
  return 0;
}
