// Experiment E12: ablations of design choices called out in DESIGN.md.
//  (a) DP-IR K constant: proof-consistent vs Algorithm 1 pseudocode.
//  (b) DP-RAM stash probability p: privacy bound vs client storage.
//  (c) Bucket-tree node capacity t: super-root pressure vs storage blowup.
//  (d) Empirical-DP event class: sufficient statistic vs whole-transcript
//      hashing at equal sample sizes.
#include <cmath>
#include <iostream>

#include "bench_json.h"

#include "analysis/empirical_dp.h"
#include "core/dp_ir.h"
#include "core/dp_params.h"
#include "core/dp_ram.h"
#include "hashing/bucket_tree.h"
#include "util/table.h"

namespace dpstore {
namespace {

constexpr size_t kBlockSize = 16;

std::vector<Block> MakeDatabase(uint64_t n) {
  std::vector<Block> db(n);
  for (uint64_t i = 0; i < n; ++i) db[i] = MarkerBlock(i, kBlockSize);
  return db;
}

void KConstantAblation() {
  PrintBanner(std::cout,
              "E12a: DP-IR K constant - proof version vs Algorithm 1 "
              "pseudocode (n=2^12, alpha=0.1)");
  constexpr uint64_t kN = 1 << 12;
  TablePrinter table({"target_eps", "K_proof", "achieved_eps_proof",
                      "K_pseudocode", "achieved_eps_pseudocode",
                      "pseudocode_overshoot"});
  for (double eps : {4.0, 6.0, 8.0}) {
    uint64_t k_proof = DpIrBlocksPerQuery(kN, eps, 0.1);
    uint64_t k_pseudo = DpIrBlocksPerQueryPseudocode(kN, eps, 0.1);
    double a_proof = DpIrAchievedEpsilon(kN, k_proof, 0.1);
    double a_pseudo = DpIrAchievedEpsilon(kN, k_pseudo, 0.1);
    table.AddRow()
        .AddDouble(eps, 1)
        .AddUint(k_proof)
        .AddDouble(a_proof, 2)
        .AddUint(k_pseudo)
        .AddDouble(a_pseudo, 2)
        .AddCell(a_pseudo > eps
                     ? std::string("+").append(FormatDouble(a_pseudo - eps, 2))
                     : std::string("none"));
  }
  table.Print(std::cout);
  std::cout << "The pseudocode constant under-provisions K by the 1/alpha\n"
               "factor, overshooting the target budget; the library defaults\n"
               "to the proof-consistent constant.\n";
}

void StashProbabilityAblation() {
  PrintBanner(std::cout,
              "E12b: DP-RAM stash probability p - privacy bound vs client "
              "storage (n=2^14)");
  constexpr uint64_t kN = 1 << 14;
  TablePrinter table({"p", "E[stash]=p*n", "eps_upper_bound",
                      "meets_omega_log_n"});
  double log_n = std::log2(static_cast<double>(kN));
  for (double phi :
       {0.25 * log_n, log_n, std::pow(log_n, 1.5), log_n * log_n,
        std::sqrt(static_cast<double>(kN)), static_cast<double>(kN) / 4.0}) {
    double p = phi / static_cast<double>(kN);
    table.AddRow()
        .AddScientific(p)
        .AddDouble(phi, 1)
        .AddDouble(DpRamEpsilonUpperBound(kN, p), 2)
        .AddCell(phi > log_n ? "yes" : "no (stash bound unproven)");
  }
  table.Print(std::cout);
  std::cout << "Raising p buys a smaller privacy bound at linear client\n"
               "storage cost; the p = log^1.5(n)/n default sits at the knee.\n";
}

void NodeCapacityAblation() {
  PrintBanner(std::cout,
              "E12c: bucket-tree node capacity t - super-root pressure vs "
              "storage (2n = 2^17 keys into an n = 2^16 geometry)");
  constexpr uint64_t kN = 1 << 16;
  // Overload the structure to 2x its design capacity so the node-capacity
  // choice becomes the binding constraint.
  constexpr uint64_t kKeys = 2 * kN;
  TablePrinter table({"t", "storage_blocks", "blowup", "super_root_keys"});
  BucketTreeGeometry g = BucketTreeGeometry::ForCapacity(kN);
  for (uint64_t t : {uint64_t{1}, uint64_t{2}, uint64_t{4}, uint64_t{8}}) {
    std::vector<uint8_t> load(g.total_nodes(), 0);
    Rng rng(t * 101);
    uint64_t super_root = 0;
    for (uint64_t key = 0; key < kKeys; ++key) {
      uint64_t l1 = rng.Uniform(g.num_leaves());
      uint64_t l2 = rng.Uniform(g.num_leaves());
      auto p1 = g.Path(l1);
      auto p2 = g.Path(l2);
      bool placed = false;
      for (size_t h = 0; h < p1.size() && !placed; ++h) {
        if (load[p1[h]] < t) {
          ++load[p1[h]];
          placed = true;
        } else if (l1 != l2 && load[p2[h]] < t) {
          ++load[p2[h]];
          placed = true;
        }
      }
      if (!placed) ++super_root;
    }
    table.AddRow()
        .AddUint(t)
        .AddUint(g.total_nodes() * t)
        .AddDouble(static_cast<double>(g.total_nodes() * t) /
                       static_cast<double>(kN),
                   2)
        .AddUint(super_root);
  }
  table.Print(std::cout);
  std::cout << "At design capacity every t suffices (the tree levels add\n"
               "~2x slack); under 2x overload t=1 pushes tens of thousands\n"
               "of keys to the client while t>=2 absorbs the surge - the\n"
               "paper's t = Theta(1) with constant headroom.\n";
}

void EventClassAblation() {
  PrintBanner(std::cout,
              "E12d: empirical-DP event class - sufficient statistic vs "
              "whole-transcript hash (DP-RAM, n=8, 20k pairs)");
  constexpr uint64_t kN = 8;
  constexpr int kTrials = 20000;
  std::vector<Block> db = MakeDatabase(kN);
  EventHistogram pair1;
  EventHistogram pair2;
  EventHistogram hash1;
  EventHistogram hash2;
  for (int t = 0; t < kTrials; ++t) {
    DpRamOptions options;
    options.stash_probability = 0.5;
    options.seed = 90000 + static_cast<uint64_t>(t);
    {
      DpRam ram(db, options);
      DPSTORE_CHECK_OK(ram.Read(1).status());
      pair1.Add(DpRamQueryEvent(ram.server().transcript(), 0, kN));
      hash1.Add(TranscriptHashEvent(ram.server().transcript()));
    }
    {
      DpRam ram(db, options);
      DPSTORE_CHECK_OK(ram.Read(2).status());
      pair2.Add(DpRamQueryEvent(ram.server().transcript(), 0, kN));
      hash2.Add(TranscriptHashEvent(ram.server().transcript()));
    }
  }
  DpEstimate pair_est = EstimatePrivacy(pair1, pair2, 20);
  DpEstimate hash_est = EstimatePrivacy(hash1, hash2, 20);
  TablePrinter table({"event_class", "distinct_events", "supported_events",
                      "epsilon_hat", "one_sided_mass"});
  table.AddRow()
      .AddCell("(download,overwrite) pair")
      .AddUint(pair1.distinct())
      .AddUint(pair_est.supported_events)
      .AddDouble(pair_est.epsilon_hat, 2)
      .AddScientific(pair_est.one_sided_mass);
  table.AddRow()
      .AddCell("whole-transcript hash")
      .AddUint(hash1.distinct())
      .AddUint(hash_est.supported_events)
      .AddDouble(hash_est.epsilon_hat, 2)
      .AddScientific(hash_est.one_sided_mass);
  table.Print(std::cout);
  std::cout << "Both classes agree here because a single-query transcript\n"
               "IS the (download,overwrite) pair; on longer sequences the\n"
               "hash class fragments into unsupported singleton events while\n"
               "the proof's per-position statistic keeps converging.\n";
}

void Run() {
  KConstantAblation();
  StashProbabilityAblation();
  NodeCapacityAblation();
  EventClassAblation();
}

}  // namespace
}  // namespace dpstore

int main() {
  dpstore::bench::BenchJson json("ablations");
  dpstore::Run();
  json.Emit();
  return 0;
}
