// Experiment E2 (Theorem 3.4 + 5.1): DP-IR with error alpha has per-query
// cost K = Theta((1-alpha) n / e^eps), matching the lower bound
// Omega((1-alpha-delta) n / e^eps) for every eps. We sweep eps (including
// the Theta(log n) regime where K becomes O(1)) and alpha, printing the
// measured blocks/query, the formula, and the lower bound.
#include <cmath>
#include <iostream>

#include "bench_json.h"

#include "core/dp_ir.h"
#include "core/dp_params.h"
#include "storage/server.h"
#include "util/table.h"

namespace dpstore {
namespace {

constexpr uint64_t kN = 1 << 14;

void SweepEpsilon(double alpha) {
  PrintBanner(std::cout, "E2: DP-IR bandwidth vs epsilon (n=2^14, alpha=" +
                             FormatDouble(alpha, 2) + ")");
  TablePrinter table({"epsilon", "K_formula", "measured_blocks/query",
                      "lower_bound", "K/lower_bound", "achieved_eps"});
  StorageServer server(kN, 32);
  double log_n = std::log(static_cast<double>(kN));
  for (double eps : {2.0, 4.0, 6.0, 8.0, log_n, 1.5 * log_n, 2.0 * log_n}) {
    DpIrOptions options;
    options.epsilon = eps;
    options.alpha = alpha;
    options.seed = 1234;
    DpIr ir(&server, options);
    server.ResetTranscript();
    constexpr int kQueries = 200;
    for (int q = 0; q < kQueries; ++q) {
      DPSTORE_CHECK_OK(ir.Query(static_cast<BlockId>(q) % kN).status());
    }
    double measured = server.transcript().BlocksPerQuery();
    double lb = DpIrLowerBound(kN, eps, alpha, 0.0);
    table.AddRow()
        .AddDouble(eps, 2)
        .AddUint(ir.k())
        .AddDouble(measured, 1)
        .AddDouble(lb, 1)
        .AddCell(lb >= 1.0 ? FormatDouble(static_cast<double>(ir.k()) / lb, 2)
                           : "-")
        .AddDouble(ir.achieved_epsilon(), 2);
  }
  table.Print(std::cout);
}

void Run() {
  for (double alpha : {0.05, 0.1, 0.25}) SweepEpsilon(alpha);
  std::cout
      << "\nPaper claim: K = Theta((1-alpha) n / e^eps) is optimal (Thms 3.4\n"
         "and 5.1); at eps = Theta(log n) the cost is O(1) blocks. Measured:\n"
         "blocks/query tracks the formula exactly and stays within a small\n"
         "constant of the lower bound at every eps; the last three rows (the\n"
         "log-n regime) are single-digit block counts.\n";
}

}  // namespace
}  // namespace dpstore

int main() {
  dpstore::bench::BenchJson json("dpir_bandwidth");
  dpstore::Run();
  json.Emit();
  return 0;
}
