// bench_persist: durability-subsystem microbenchmarks (PR 8).
//
// Two studies against a throwaway data dir under /tmp:
//
//   1. Journal append throughput: fsync-batch-size x record-size. Each
//      cell appends upload records of `record_bytes` payload and calls
//      Sync once per `batch` appends — the group-commit discipline the
//      server's exchange-fusion seam produces. Reported per cell:
//      ops/sec and the p99 of per-op latency (the op whose turn pays the
//      fdatasync shows up in the tail, which is exactly the durable-write
//      tax the loadgen study sees end to end).
//
//   2. Recovery time vs journal length: write a journal of R records,
//      then measure Journal::Open's scan+replay wall time. Linear in
//      journal bytes; the per-record and per-MB rates are the numbers
//      that size a --data-dir deployment's restart budget.
//
// Emits BENCH_persist.json via bench_json.h.

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"

#include "storage/persist/journal.h"
#include "util/check.h"
#include "util/crc32c.h"

namespace dpstore {
namespace {

using Clock = std::chrono::steady_clock;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/dpstore_bench_persist_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  DPSTORE_CHECK(dir != nullptr);
  return dir;
}

void RemoveTree(const std::string& dir) {
  if (DIR* d = opendir(dir.c_str())) {
    while (dirent* entry = readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      std::remove((dir + "/" + name).c_str());
    }
    closedir(d);
  }
  rmdir(dir.c_str());
}

double Percentile(std::vector<double>* latencies, double p) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  const size_t index = std::min(
      latencies->size() - 1,
      static_cast<size_t>(p * static_cast<double>(latencies->size())));
  return (*latencies)[index];
}

struct AppendCell {
  double ops_per_sec = 0.0;
  double p99_ms = 0.0;
  uint64_t fsyncs = 0;
};

/// One append-throughput cell: `ops` upload records of `record_bytes`
/// payload, one Sync per `batch` appends.
AppendCell RunAppendCell(size_t batch, size_t record_bytes, uint64_t ops) {
  const std::string dir = MakeTempDir();
  persist::PersistOptions options;
  options.data_dir = dir;
  auto journal = persist::Journal::Open(
      dir, options, 1, [](const persist::JournalRecordView&) {
        return OkStatus();
      });
  DPSTORE_CHECK_OK(journal.status());

  const uint32_t block_size = static_cast<uint32_t>(record_bytes);
  const uint64_t index = 0;
  std::vector<uint8_t> payload(record_bytes, 0xA5);
  std::vector<double> latencies;
  latencies.reserve(ops);

  const Clock::time_point start = Clock::now();
  for (uint64_t op = 0; op < ops; ++op) {
    const Clock::time_point begin = Clock::now();
    auto lsn = (*journal)->Append(1, persist::JournalOp::kUpload, block_size,
                                  1, &index, payload.data(), payload.size());
    DPSTORE_CHECK_OK(lsn.status());
    if ((op + 1) % batch == 0) {
      DPSTORE_CHECK_OK((*journal)->Sync(*lsn));
    }
    latencies.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - begin)
            .count());
  }
  DPSTORE_CHECK_OK((*journal)->Sync((*journal)->last_lsn()));
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  AppendCell cell;
  cell.ops_per_sec =
      seconds > 0 ? static_cast<double>(ops) / seconds : 0.0;
  cell.p99_ms = Percentile(&latencies, 0.99);
  cell.fsyncs = (*journal)->SnapshotCounters().fsyncs;
  journal->reset();
  RemoveTree(dir);
  return cell;
}

struct RecoveryCell {
  double replay_ms = 0.0;
  double records_per_sec = 0.0;
  double mb_per_sec = 0.0;
};

/// Writes a journal of `records` upload records (`record_bytes` payload
/// each), closes it, and measures a fresh Open's scan+replay.
RecoveryCell RunRecoveryCell(uint64_t records, size_t record_bytes) {
  const std::string dir = MakeTempDir();
  persist::PersistOptions options;
  options.data_dir = dir;
  uint64_t journal_bytes = 0;
  {
    auto journal = persist::Journal::Open(
        dir, options, 1, [](const persist::JournalRecordView&) {
          return OkStatus();
        });
    DPSTORE_CHECK_OK(journal.status());
    const uint64_t index = 0;
    std::vector<uint8_t> payload(record_bytes, 0x3C);
    for (uint64_t op = 0; op < records; ++op) {
      DPSTORE_CHECK_OK((*journal)
                           ->Append(1, persist::JournalOp::kUpload,
                                    static_cast<uint32_t>(record_bytes), 1,
                                    &index, payload.data(), payload.size())
                           .status());
    }
    DPSTORE_CHECK_OK((*journal)->Sync((*journal)->last_lsn()));
    journal_bytes = (*journal)->SnapshotCounters().journal_bytes;
  }

  uint64_t replayed = 0;
  const Clock::time_point start = Clock::now();
  auto journal = persist::Journal::Open(
      dir, options, 1, [&replayed](const persist::JournalRecordView&) {
        ++replayed;
        return OkStatus();
      });
  const double ms = std::chrono::duration<double, std::milli>(
                        Clock::now() - start)
                        .count();
  DPSTORE_CHECK_OK(journal.status());
  DPSTORE_CHECK_EQ(replayed, records);
  journal->reset();
  RemoveTree(dir);

  RecoveryCell cell;
  cell.replay_ms = ms;
  cell.records_per_sec =
      ms > 0 ? static_cast<double>(records) * 1000.0 / ms : 0.0;
  cell.mb_per_sec = ms > 0 ? static_cast<double>(journal_bytes) / 1048576.0 *
                                 1000.0 / ms
                           : 0.0;
  return cell;
}

}  // namespace
}  // namespace dpstore

int main() {
  using namespace dpstore;
  bench::BenchJson json("persist");
  json.Metric("crc32c_variant", std::string(crc32c::VariantName()));

  // Study 1: group-commit batch size x record size.
  const uint64_t kOps = 2000;
  for (const size_t batch : {size_t{1}, size_t{8}, size_t{64}}) {
    for (const size_t record_bytes : {size_t{64}, size_t{1024}}) {
      const AppendCell cell = RunAppendCell(batch, record_bytes, kOps);
      const std::string key =
          "append_b" + std::to_string(batch) + "_s" +
          std::to_string(record_bytes);
      json.Metric(key + "_ops_per_sec", cell.ops_per_sec);
      json.Metric(key + "_p99_ms", cell.p99_ms);
      json.Metric(key + "_fsyncs", cell.fsyncs);
      std::printf("persist: batch=%-3zu record=%-5zu  %10.0f ops/s  "
                  "p99 %.4f ms  (%llu fsyncs)\n",
                  batch, record_bytes, cell.ops_per_sec, cell.p99_ms,
                  static_cast<unsigned long long>(cell.fsyncs));
    }
  }

  // Study 2: recovery time vs journal length.
  for (const uint64_t records : {uint64_t{1000}, uint64_t{10000},
                                 uint64_t{40000}}) {
    const RecoveryCell cell = RunRecoveryCell(records, 256);
    const std::string key = "recovery_r" + std::to_string(records);
    json.Metric(key + "_ms", cell.replay_ms);
    json.Metric(key + "_records_per_sec", cell.records_per_sec);
    json.Metric(key + "_mb_per_sec", cell.mb_per_sec);
    std::printf("persist: recovery of %6llu records  %8.2f ms  "
                "(%.0f rec/s, %.1f MB/s)\n",
                static_cast<unsigned long long>(records), cell.replay_ms,
                cell.records_per_sec, cell.mb_per_sec);
  }

  json.Emit();
  return 0;
}
