// Experiment E3 (Theorem 5.1): empirical privacy of the DP-IR construction.
// For an adjacent query pair (i vs j) we histogram the Lemma 3.2 membership
// events over many trials and report the plug-in epsilon-hat against the
// closed-form achieved budget, plus the measured error rate against alpha.
#include <cmath>
#include <iostream>

#include "bench_json.h"

#include "analysis/empirical_dp.h"
#include "core/dp_ir.h"
#include "storage/server.h"
#include "util/table.h"

namespace dpstore {
namespace {

constexpr uint64_t kN = 1 << 10;
constexpr int kTrials = 200000;

void Run() {
  PrintBanner(std::cout,
              "E3 / Theorem 5.1: empirical epsilon of DP-IR (n=2^10, "
              "200k trials/config)");
  TablePrinter table({"configured_eps", "alpha", "K", "achieved_eps",
                      "empirical_eps", "one_sided_mass", "measured_error"});
  StorageServer server(kN, 32);
  const BlockId qi = 5;
  const BlockId qj = 900;
  for (double eps : {4.0, 5.5, 7.0}) {
    for (double alpha : {0.1, 0.25}) {
      DpIrOptions options;
      options.epsilon = eps;
      options.alpha = alpha;
      options.seed = 42;
      DpIr ir(&server, options);
      EventHistogram hi;
      EventHistogram hj;
      int errors = 0;
      for (int t = 0; t < kTrials; ++t) {
        server.ResetTranscript();
        auto r1 = ir.Query(qi);
        DPSTORE_CHECK_OK(r1.status());
        if (!r1->has_value()) ++errors;
        hi.Add(DpIrMembershipEvent(server.transcript().QueryDownloads(0), qi,
                                   qj));
        server.ResetTranscript();
        DPSTORE_CHECK_OK(ir.Query(qj).status());
        hj.Add(DpIrMembershipEvent(server.transcript().QueryDownloads(0), qi,
                                   qj));
      }
      DpEstimate est = EstimatePrivacy(hi, hj, /*min_count=*/10);
      table.AddRow()
          .AddDouble(eps, 2)
          .AddDouble(alpha, 2)
          .AddUint(ir.k())
          .AddDouble(ir.achieved_epsilon(), 2)
          .AddDouble(est.epsilon_hat, 2)
          .AddScientific(est.one_sided_mass)
          .AddDouble(static_cast<double>(errors) / kTrials, 3);
    }
  }
  table.Print(std::cout);
  std::cout
      << "\nPaper claim: Algorithm 1 is pure eps-DP with\n"
         "eps = ln(1 + (1-alpha) n / (alpha K)) and error exactly alpha.\n"
         "Measured: empirical epsilon-hat tracks the achieved budget from\n"
         "below (sampling bias only), no one-sided events (pure DP, delta=0),\n"
         "and the error rate matches alpha.\n";
}

}  // namespace
}  // namespace dpstore

int main() {
  dpstore::bench::BenchJson json("dpir_privacy");
  dpstore::Run();
  json.Emit();
  return 0;
}
