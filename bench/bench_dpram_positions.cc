// Experiment E7b (Lemma 6.7 / Section 6.4, Step III of the DP-RAM proof):
// for adjacent multi-query sequences, the transcript distributions diverge
// at *no more than three positions* - the differing position k and the next
// queries for the two records swapped there. Every other position has
// per-position ratio exactly 1, which is what lets the proof avoid the
// naive n^O(l) blow-up. We measure per-position epsilon-hat over 60k trial
// pairs and check divergence is confined to the Lemma 6.7 set.
#include <iostream>

#include "bench_json.h"

#include "analysis/empirical_dp.h"
#include "analysis/sequence_audit.h"
#include "core/dp_ram.h"
#include "util/table.h"

namespace dpstore {
namespace {

constexpr uint64_t kN = 8;
constexpr size_t kRecordSize = 16;
constexpr int kTrials = 60000;

std::vector<Block> MakeDatabase(uint64_t n) {
  std::vector<Block> db(n);
  for (uint64_t i = 0; i < n; ++i) db[i] = MarkerBlock(i, kRecordSize);
  return db;
}

std::vector<uint64_t> RunSequence(const RamSequence& seq, uint64_t seed,
                                  const std::vector<Block>& db, BlockId q1,
                                  BlockId q2) {
  DpRamOptions options;
  options.stash_probability = 0.5;
  options.seed = seed;
  DpRam ram(db, options);
  for (const RamQuery& op : seq) {
    if (op.is_write) {
      DPSTORE_CHECK_OK(ram.Write(op.index, MarkerBlock(op.index,
                                                       kRecordSize)));
    } else {
      DPSTORE_CHECK_OK(ram.Read(op.index).status());
    }
  }
  std::vector<uint64_t> events(seq.size());
  for (size_t j = 0; j < seq.size(); ++j) {
    events[j] =
        DpRamCategoricalQueryEvent(ram.server().transcript(), j, q1, q2);
  }
  return events;
}

void Run() {
  PrintBanner(std::cout,
              "E7b / Lemma 6.7: divergence is confined to "
              "{k, nx(Q,k), nx(Q',k)} (n=8, l=6, 60k pairs)");
  // Q  = read 5, read 1, read 3, read 1, read 5, read 3
  // Q' = read 5, read 2, read 3, read 1, read 5, read 3   (differ at k=1)
  // nx(Q,1) = 3 (next query for record 1); nx(Q',1) = none (record 2 never
  // queried again) -> allowed divergence set {1, 3}.
  RamSequence q = {{5, false}, {1, false}, {3, false},
                   {1, false}, {5, false}, {3, false}};
  RamSequence q_prime = WithReplacedQuery(q, 1, RamQuery{2, false});
  const BlockId r1 = 1;
  const BlockId r2 = 2;
  std::vector<size_t> allowed = Lemma67DivergenceSet(q, q_prime, 1);

  std::vector<Block> db = MakeDatabase(kN);
  std::vector<std::vector<std::vector<uint64_t>>> events(2);
  for (int t = 0; t < kTrials; ++t) {
    uint64_t seed = 70000 + static_cast<uint64_t>(t);
    events[0].push_back(RunSequence(q, seed, db, r1, r2));
    events[1].push_back(RunSequence(q_prime, seed, db, r1, r2));
  }
  SequenceAuditResult audit = AuditPositions(events, allowed,
                                             /*noise_threshold=*/0.25,
                                             /*min_count=*/50);

  TablePrinter table({"position", "query(Q)", "query(Q')", "epsilon_hat",
                      "allowed_by_lemma", "diverges"});
  for (const PositionDivergence& pd : audit.positions) {
    table.AddRow()
        .AddUint(pd.position)
        .AddCell("read " + std::to_string(q[pd.position].index))
        .AddCell("read " + std::to_string(q_prime[pd.position].index))
        .AddDouble(pd.epsilon_hat, 3)
        .AddCell(pd.allowed_by_lemma ? "yes" : "no")
        .AddCell(pd.epsilon_hat > 0.25 ? "YES" : "-");
  }
  table.Print(std::cout);
  std::cout << "Divergent positions: " << audit.divergent_count
            << "; outside the Lemma 6.7 set: " << audit.unexplained_count
            << " (must be 0).\nSummed epsilon over the allowed set: "
            << FormatDouble(audit.total_epsilon, 2)
            << " - the composition the proof's wrap-up (<= 3 factors) "
               "performs.\n";
  // The divergence at nx(Q,k) is *conditional* (it rides on what happened
  // at position k), so single-position marginals can miss it. Compare the
  // joint event over the allowed pair {1,3} against a control pair of
  // untouched positions {0,4}.
  auto joint = [&](size_t a, size_t b) {
    EventHistogram h1;
    EventHistogram h2;
    for (size_t t = 0; t < events[0].size(); ++t) {
      h1.Add(events[0][t][a] * 9 + events[0][t][b]);
      h2.Add(events[1][t][a] * 9 + events[1][t][b]);
    }
    return EstimatePrivacy(h1, h2, /*min_count=*/50);
  };
  DpEstimate allowed_joint = joint(1, 3);
  DpEstimate control_joint = joint(0, 4);
  std::cout << "Joint-event epsilon over allowed pair {1,3}: "
            << FormatDouble(allowed_joint.epsilon_hat, 2)
            << "  vs control pair {0,4}: "
            << FormatDouble(control_joint.epsilon_hat, 2) << "\n";

  std::cout
      << "\nPaper claim: pr(Q,j) = pr(Q',j) and q_j = q'_j imply identical\n"
         "per-position distributions (Lemma 6.6); for adjacent sequences\n"
         "that leaves only {k, nx(Q,k), nx(Q',k)} (Lemma 6.7). Measured:\n"
         "positions outside the set estimate epsilon ~ 0, the divergence\n"
         "concentrates at k=1, and the conditional divergence at nx(Q,k)=3\n"
         "surfaces in the joint event while the control pair stays flat.\n";
}

}  // namespace
}  // namespace dpstore

int main() {
  dpstore::bench::BenchJson json("dpram_positions");
  dpstore::Run();
  json.Emit();
  return 0;
}
