#ifndef DPSTORE_BENCH_BENCH_JSON_H_
#define DPSTORE_BENCH_BENCH_JSON_H_

// Shared machine-readable result emitter for the bench/ binaries.
//
// Each bench constructs one `BenchJson emitter("name");` at the top of
// main, optionally records scalar metrics while it runs, and calls
// `emitter.Emit()` before returning. Emit() prints one self-delimiting
// stdout line of the form
//
//   BENCH_<name>.json: {"bench":"<name>","wall_ms":...,...}
//
// so a log scraper can recover every result with a single grep, and — when
// the DPSTORE_BENCH_JSON_DIR environment variable names a directory — also
// writes the same object to <dir>/BENCH_<name>.json so perf trajectories
// can be collected as files across runs.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace dpstore {
namespace bench {

class BenchJson {
 public:
  explicit BenchJson(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

  /// Records a scalar metric. Keys repeat in insertion order; callers are
  /// expected to use distinct keys. The integral template keeps plain-int
  /// literals from being ambiguous between double and a fixed-width type.
  void Metric(const std::string& key, double value) {
    metrics_.emplace_back(key, FormatDouble(value));
  }
  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  void Metric(const std::string& key, T value) {
    metrics_.emplace_back(key, std::to_string(value));
  }
  void Metric(const std::string& key, const std::string& value) {
    metrics_.emplace_back(key, Quote(value));
  }

  /// Prints the BENCH_<name>.json line and (if DPSTORE_BENCH_JSON_DIR is
  /// set) writes the sidecar file. Safe to call exactly once.
  void Emit(std::ostream& os = std::cout) const {
    const std::string object = Render();
    os << "BENCH_" << name_ << ".json: " << object << "\n";
    if (const char* dir = std::getenv("DPSTORE_BENCH_JSON_DIR")) {
      const std::string path = std::string(dir) + "/BENCH_" + name_ + ".json";
      std::ofstream file(path);
      if (file) {
        file << object << "\n";
      } else {
        std::cerr << "bench_json: cannot write " << path
                  << " (DPSTORE_BENCH_JSON_DIR missing or unwritable)\n";
      }
    }
  }

 private:
  std::string Render() const {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const double wall_ms =
        std::chrono::duration<double, std::milli>(elapsed).count();
    std::ostringstream out;
    out << "{\"bench\":" << Quote(name_) << ",\"wall_ms\":"
        << FormatDouble(wall_ms);
    for (const auto& [key, rendered] : metrics_) {
      out << "," << Quote(key) << ":" << rendered;
    }
    out << "}";
    return out.str();
  }

  // JSON has no inf/nan literals; map non-finite values to null.
  static std::string FormatDouble(double value) {
    if (!std::isfinite(value)) return "null";
    std::ostringstream out;
    out.precision(6);
    out << std::fixed << value;
    return out.str();
  }

  static std::string Quote(const std::string& raw) {
    std::string out = "\"";
    for (char c : raw) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += "\"";
    return out;
  }

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, std::string>> metrics_;
};

}  // namespace bench
}  // namespace dpstore

#endif  // DPSTORE_BENCH_BENCH_JSON_H_
