// bench_loadgen: open-loop multi-client load study of the multi-tenant
// storage server. N client threads each run a registered scheme over a
// real socket (SocketBackend), issuing queries on a FIXED arrival
// schedule — the open-loop discipline: an op's latency is measured from
// its SCHEDULED arrival to completion, so server queueing delay is part
// of the number instead of silently throttling the offered load (the
// closed-loop mistake). The sweep crosses offered load x client count x
// scheme and reports achieved throughput and p50/p99/p999 latency.
//
// By default the server is in-process: a StorageService behind a real
// Unix listener on a temp path (the same engine/service/wire stack
// dpstore_server runs, minus the process boundary). Point it at a live
// server instead with --unix <path> or --addr <host>:<port>, as the CI
// load-smoke step does.
//
// Flags (all optional):
//   --unix <path>      target a running dpstore_server on a Unix socket
//   --addr <host:port> target a running dpstore_server over TCP
//   --data-dir <d>     run the in-process server durable (WAL + mmap
//                      arenas under <d>): durable-vs-in-memory p99 on
//                      the same schedule
//   --scheme <name>    single-cell mode: run just this scheme
//   --clients <n>      single-cell mode: client count (default 4)
//   --rate <ops/s>     single-cell mode: offered load (default 400)
//   --ops <n>          single-cell mode: ops per client (default derived)
//   --cluster <file>   cluster mode: run the open-loop cell against the
//                      multi-process cluster described by <file>
//                      (docs/cluster.md; the servers must already be up),
//                      plus a rebalance-pricing cell when the config has a
//                      warm spare. Kill a node mid-sweep and the clients'
//                      ClusterBackends fail over live ("dpstore_cluster:"
//                      lines on stderr) — the CI cluster job's drill.
//
// Cells emitted:
//   BENCH_loadgen_<scheme>_c<clients>_r<rate>.json   one per sweep cell
//   BENCH_loadgen_rebalance.json                     cluster mode only
//   BENCH_loadgen.json                               closing summary
//
// Cluster cells are emitted only under --cluster (never in the default
// sweep), so bench/baseline/BENCH_all.json's cell set stays stable.

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <latch>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "chaos_proxy.h"

#include "core/scheme_registry.h"
#include "server/storage_service.h"
#include "storage/cluster.h"
#include "util/check.h"
#include "util/io.h"

namespace dpstore {
namespace {

using Clock = std::chrono::steady_clock;

// --- In-process server -------------------------------------------------------

/// A StorageService behind a real Unix listener: the dpstore_server
/// accept loop, in-process. Every bench connection crosses the same
/// codec, reader threads and worker pool as a standalone deployment.
class InProcessServer {
 public:
  /// A non-empty `data_dir` runs the engine durable (mmap arenas +
  /// write-ahead journal), so the same schedule measures the fdatasync
  /// tax against the in-memory numbers.
  explicit InProcessServer(const std::string& data_dir = "") {
    StorageServiceOptions options;
    options.num_threads = 4;
    options.max_conns = 256;
    options.persist.data_dir = data_dir;
    auto made = StorageService::Make(options);
    DPSTORE_CHECK_OK(made.status());
    service_ = std::move(*made);
    path_ = "/tmp/dpstore_loadgen_" + std::to_string(::getpid()) + ".sock";
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    DPSTORE_CHECK_LT(path_.size(), sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);
    ::unlink(path_.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    DPSTORE_CHECK_GE(listen_fd_, 0);
    DPSTORE_CHECK_EQ(
        ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
        0);
    DPSTORE_CHECK_EQ(::listen(listen_fd_, 128), 0);
    acceptor_ = std::thread([this] {
      for (;;) {
        const int conn = io::AcceptEintr(listen_fd_, nullptr, nullptr);
        if (conn < 0) return;  // listener closed: shut down
        service_->HandleConnection(conn);
      }
    });
  }

  ~InProcessServer() {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (acceptor_.joinable()) acceptor_.join();
    service_->Drain();
    ::unlink(path_.c_str());
  }

  const std::string& path() const { return path_; }

 private:
  std::unique_ptr<StorageService> service_;
  std::string path_;
  int listen_fd_ = -1;
  std::thread acceptor_;
};

// --- Open-loop cell ----------------------------------------------------------

struct CellResult {
  bool ok = false;
  /// Acked ops (latency percentiles are computed over these only).
  uint64_t ops = 0;
  /// Ops whose QueryRead surfaced an error (counted, not fatal: under an
  /// injected-fault schedule errors are part of the measurement, and a
  /// failed op must not erase the rest of the cell's tail percentiles).
  uint64_t errors = 0;
  /// Attempted-ops throughput (acked + errored, the classic number).
  double achieved_ops_per_sec = 0.0;
  /// Acked-only throughput: what the service actually delivered.
  double achieved_ok_ops_sec = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t index = std::min(
      sorted.size() - 1, static_cast<size_t>(p * static_cast<double>(
                                                     sorted.size())));
  return sorted[index];
}

/// Runs one open-loop cell: `clients` scheme instances built from
/// `base_config` (socket target, backend topology, retry/reconnect knobs),
/// a combined offered load of `rate` ops/s spread evenly,
/// `ops_per_client` queries each on a fixed schedule. When the base
/// config names a shared-namespace range, each client gets a disjoint
/// sub-range (the registry mints ids per backend within one factory, but
/// the factories of different clients would otherwise collide).
CellResult RunCell(const std::string& scheme_name,
                   const SchemeConfig& base_config, unsigned clients,
                   double rate, uint64_t ops_per_client) {
  const uint64_t kRecords = 64;
  std::vector<std::unique_ptr<RamScheme>> schemes(clients);
  for (unsigned c = 0; c < clients; ++c) {
    SchemeConfig config = base_config;
    config.n = kRecords;
    config.value_size = 64;
    config.seed = 1 + c;
    config.counting_only_transcript = true;
    if (config.socket_namespace_base != 0) {
      config.socket_namespace_base += uint64_t{c} * 64;
    }
    auto scheme = SchemeRegistry::Instance().MakeRam(scheme_name, config);
    if (!scheme.ok()) {
      std::fprintf(stderr, "loadgen: cannot build %s: %s\n",
                   scheme_name.c_str(), scheme.status().ToString().c_str());
      return CellResult{};
    }
    schemes[c] = std::move(*scheme);
  }

  // Each client owns an even share of the offered load; arrivals are
  // evenly spaced (deterministic schedule, so runs are reproducible).
  const std::chrono::nanoseconds interval(
      static_cast<int64_t>(1e9 * static_cast<double>(clients) / rate));
  std::vector<std::vector<double>> latencies(clients);
  std::vector<Clock::time_point> last_done(clients);
  std::atomic<uint64_t> errors{0};
  std::latch ready(static_cast<ptrdiff_t>(clients));
  const Clock::time_point start =
      Clock::now() + std::chrono::milliseconds(50);

  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      RamScheme& scheme = *schemes[c];
      std::vector<double>& lat = latencies[c];
      lat.reserve(ops_per_client);
      ready.arrive_and_wait();
      // Stagger clients by a fraction of the interval so the combined
      // arrival process is evenly spaced, not N synchronized bursts.
      const Clock::time_point base = start + interval * c / clients;
      for (uint64_t i = 0; i < ops_per_client; ++i) {
        const Clock::time_point scheduled = base + interval * i;
        std::this_thread::sleep_until(scheduled);
        const BlockId id = static_cast<BlockId>(
            (0x9E3779B97F4A7C15ULL * (i + 1 + uint64_t{c} * 7919)) >> 32 &
            (kRecords - 1));
        StatusOr<std::optional<Block>> got = scheme.QueryRead(id);
        const Clock::time_point done = Clock::now();
        if (!got.ok()) {
          // Count and carry on: under a fault schedule an errored op is a
          // data point, and the schedule keeps its remaining arrivals.
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Open-loop latency: from the SCHEDULED arrival, so time spent
        // queued behind a saturated server counts against it.
        lat.push_back(
            std::chrono::duration<double, std::milli>(done - scheduled)
                .count());
      }
      last_done[c] = Clock::now();
    });
  }
  for (std::thread& thread : threads) thread.join();

  std::vector<double> all;
  for (const std::vector<double>& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());
  CellResult result;
  result.errors = errors.load();
  // A cell that acked nothing measured nothing: report it failed.
  result.ok = !all.empty();
  result.ops = all.size();
  const Clock::time_point end =
      *std::max_element(last_done.begin(), last_done.end());
  const double seconds =
      std::chrono::duration<double>(end - start).count();
  result.achieved_ops_per_sec =
      seconds > 0
          ? static_cast<double>(all.size() + result.errors) / seconds
          : 0.0;
  result.achieved_ok_ops_sec =
      seconds > 0 ? static_cast<double>(all.size()) / seconds : 0.0;
  double sum = 0;
  for (double ms : all) sum += ms;
  result.mean_ms = all.empty() ? 0.0 : sum / static_cast<double>(all.size());
  result.p50_ms = Percentile(all, 0.50);
  result.p99_ms = Percentile(all, 0.99);
  result.p999_ms = Percentile(all, 0.999);
  return result;
}

void EmitCell(const std::string& scheme, const std::string& transport,
              unsigned clients, double rate, const CellResult& result,
              const std::string& tag = "") {
  bench::BenchJson json("loadgen_" + scheme + (tag.empty() ? "" : "_" + tag) +
                        "_c" + std::to_string(clients) + "_r" +
                        std::to_string(static_cast<int>(rate)));
  json.Metric("scheme", scheme);
  json.Metric("transport", transport);
  json.Metric("clients", clients);
  json.Metric("offered_ops_per_sec", rate);
  json.Metric("achieved_ops_per_sec", result.achieved_ops_per_sec);
  json.Metric("achieved_ok_ops_sec", result.achieved_ok_ops_sec);
  json.Metric("ops", result.ops);
  json.Metric("errors", result.errors);
  json.Metric("mean_ms", result.mean_ms);
  json.Metric("p50_ms", result.p50_ms);
  json.Metric("p99_ms", result.p99_ms);
  json.Metric("p999_ms", result.p999_ms);
  json.Metric("ok", result.ok ? 1 : 0);
  if (!tag.empty()) json.Metric("tag", tag);
  json.Emit();
}

/// Slurps the cluster config file for SchemeConfig::cluster_config (the
/// registry wants the text; parse errors surface typed from the factory).
bool SlurpFile(const std::string& path, std::string* out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out->append(buffer, got);
  }
  const bool ok = std::ferror(file) == 0;
  std::fclose(file);
  return ok;
}

/// The rebalance-pricing cell: plan moving range 0 to the first warm
/// spare, execute it, and record predicted volume next to measured
/// wall-clock — the cost model the operator consults before a move
/// (docs/cluster.md).
bool RunRebalanceCell(const ClusterConfig& cluster) {
  const uint64_t kBlocks = 4096;
  const size_t kBlockSize = 64;
  ClusterBackend backend(kBlocks, kBlockSize, cluster);
  std::vector<Block> db(kBlocks);
  for (uint64_t i = 0; i < kBlocks; ++i) db[i] = MarkerBlock(i, kBlockSize);
  const Status seeded = backend.SetArray(std::move(db));
  if (!seeded.ok()) {
    std::fprintf(stderr, "loadgen: rebalance seed failed: %s\n",
                 seeded.ToString().c_str());
    return false;
  }
  const std::string spare = cluster.nodes()[cluster.spares()[0]].name;
  auto plan = backend.PlanRebalance(0, spare, /*batch_blocks=*/256);
  if (!plan.ok()) {
    std::fprintf(stderr, "loadgen: rebalance plan failed: %s\n",
                 plan.status().ToString().c_str());
    return false;
  }
  auto wall_ms = backend.ExecuteRebalance(*plan);
  if (!wall_ms.ok()) {
    std::fprintf(stderr, "loadgen: rebalance failed: %s\n",
                 wall_ms.status().ToString().c_str());
    return false;
  }
  bench::BenchJson json("loadgen_rebalance");
  json.Metric("from", plan->from);
  json.Metric("to", plan->to);
  json.Metric("blocks", plan->blocks);
  json.Metric("bytes", plan->bytes);
  json.Metric("batches", plan->batches);
  json.Metric("batch_blocks", plan->batch_blocks);
  json.Metric("measured_wall_ms", *wall_ms);
  json.Metric("mb_per_sec",
              *wall_ms > 0 ? static_cast<double>(plan->bytes) / 1e6 /
                                 (*wall_ms / 1e3)
                           : 0.0);
  json.Emit();
  return true;
}

uint64_t DeriveOpsPerClient(double rate, unsigned clients) {
  // Aim for ~0.5 s of offered load per cell, bounded so cells stay quick
  // but still fill the tail percentiles.
  const double per_client = rate / clients * 0.5;
  return std::min<uint64_t>(
      400, std::max<uint64_t>(40, static_cast<uint64_t>(per_client)));
}

}  // namespace
}  // namespace dpstore

int main(int argc, char** argv) {
  using namespace dpstore;

  std::string unix_path;
  std::string unix_path2;
  std::string host;
  uint16_t port = 0;
  std::string one_scheme;
  std::string data_dir;
  std::string cluster_file;
  unsigned clients = 4;
  double rate = 400.0;
  uint64_t ops = 0;
  bool single_cell = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--unix" && i + 1 < argc) {
      unix_path = argv[++i];
    } else if (arg == "--data-dir" && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (arg == "--unix2" && i + 1 < argc) {
      unix_path2 = argv[++i];
    } else if (arg == "--addr" && i + 1 < argc) {
      const std::string addr = argv[++i];
      const size_t colon = addr.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "loadgen: --addr wants host:port\n");
        return 2;
      }
      host = addr.substr(0, colon);
      port = static_cast<uint16_t>(std::atoi(addr.c_str() + colon + 1));
    } else if (arg == "--scheme" && i + 1 < argc) {
      one_scheme = argv[++i];
      single_cell = true;
    } else if (arg == "--clients" && i + 1 < argc) {
      clients = static_cast<unsigned>(std::atoi(argv[++i]));
      single_cell = true;
    } else if (arg == "--rate" && i + 1 < argc) {
      rate = std::atof(argv[++i]);
      single_cell = true;
    } else if (arg == "--ops" && i + 1 < argc) {
      ops = static_cast<uint64_t>(std::atoll(argv[++i]));
      single_cell = true;
    } else if (arg == "--cluster" && i + 1 < argc) {
      cluster_file = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--unix <path> [--unix2 <path>] | "
                   "--addr <host:port> | --data-dir <d> | "
                   "--cluster <config-file>] "
                   "[--scheme <name>] [--clients <n>] [--rate <ops/s>] "
                   "[--ops <n>]\n",
                   argv[0]);
      return 2;
    }
  }

  // Cluster mode: the same open-loop cell, but every client's scheme is
  // built over a ClusterBackend fanning exchanges across the running
  // multi-process deployment named by the config file. No in-process
  // server — the cluster IS the target.
  if (!cluster_file.empty()) {
    std::string text;
    if (!SlurpFile(cluster_file, &text)) {
      std::fprintf(stderr, "loadgen: cannot read %s\n", cluster_file.c_str());
      return 2;
    }
    auto cluster = ClusterConfig::Parse(text);
    if (!cluster.ok()) {
      std::fprintf(stderr, "loadgen: bad cluster config: %s\n",
                   cluster.status().ToString().c_str());
      return 2;
    }
    bench::BenchJson summary("loadgen");
    int cells = 0;
    int failed = 0;
    SchemeConfig cluster_base;
    cluster_base.backend = "cluster";
    cluster_base.cluster_config = text;
    if (one_scheme.empty()) one_scheme = "dp_ir";
    if (clients == 0) clients = 1;
    const uint64_t per_client =
        ops > 0 ? ops : DeriveOpsPerClient(rate, clients);
    const CellResult result =
        RunCell(one_scheme, cluster_base, clients, rate, per_client);
    EmitCell(one_scheme, "cluster", clients, rate, result, "cluster");
    ++cells;
    if (!result.ok) ++failed;
    // Price and execute a range move when the topology has a spare.
    if (!cluster->spares().empty()) {
      ++cells;
      if (!RunRebalanceCell(*cluster)) ++failed;
    }
    summary.Metric("cells", cells);
    summary.Metric("failed", failed);
    summary.Metric("transport", "cluster");
    summary.Emit();
    return failed == 0 ? 0 : 1;
  }

  // No target given: bring up the full service stack in-process —
  // durable when --data-dir names a directory, so the same open-loop
  // schedule yields a durable-vs-in-memory p99 comparison.
  std::unique_ptr<InProcessServer> local;
  std::string transport = "tcp";
  if (unix_path.empty() && host.empty()) {
    local = std::make_unique<InProcessServer>(data_dir);
    unix_path = local->path();
    transport = data_dir.empty() ? "inproc-unix" : "inproc-unix-durable";
  } else if (!unix_path.empty()) {
    transport = "unix";
  }

  bench::BenchJson summary("loadgen");
  int cells = 0;
  int failed = 0;
  SchemeConfig wire_config;
  wire_config.backend = "socket";
  wire_config.socket_path = unix_path;
  wire_config.socket_path2 = unix_path2;
  wire_config.socket_host = host;
  wire_config.socket_port = port;
  auto run_one = [&](const std::string& scheme, const SchemeConfig& base,
                     unsigned c, double r, const std::string& tag = "") {
    const uint64_t per_client = ops > 0 ? ops : DeriveOpsPerClient(r, c);
    const CellResult result = RunCell(scheme, base, c, r, per_client);
    EmitCell(scheme, transport, c, r, result, tag);
    ++cells;
    if (!result.ok) ++failed;
  };

  if (single_cell) {
    if (one_scheme.empty()) one_scheme = "dp_ir";
    if (clients == 0) clients = 1;
    run_one(one_scheme, wire_config, clients, rate);
  } else {
    // The study proper: offered load x client count x scheme. 12 cells.
    for (const char* scheme : {"dp_ir", "path_oram"}) {
      for (unsigned c : {1u, 2u, 4u}) {
        for (double r : {200.0, 800.0}) {
          run_one(scheme, wire_config, c, r);
        }
      }
    }

    // Chaos cells: the same open-loop schedule through the fault-injecting
    // proxy with 1% of post-warmup frames resetting the connection —
    // p99 and errored-op counts with transport retry OFF vs ON. Retry ON
    // decorates the reconnecting socket with RetryingBackend, so a reset
    // download is transparently resubmitted (reads are always safe to
    // retry) and shows up as tail latency instead of an error.
    if (!unix_path.empty()) {
      test::ChaosOptions chaos;
      chaos.seed = 1;
      chaos.warmup_frames = 2;  // Open/SetArray land clean
      chaos.reset_prob = 0.01;
      const std::string proxy_path = unix_path + ".chaos";
      test::ChaosProxy proxy(proxy_path, unix_path, chaos);
      proxy.Start();

      SchemeConfig chaos_config = wire_config;
      chaos_config.socket_path = proxy_path;
      chaos_config.socket_path2.clear();
      chaos_config.socket_reconnect_max = 100;
      chaos_config.socket_namespace_base = 50000;
      run_one("dp_ir", chaos_config, 4, 400.0, "chaos_retry_off");

      chaos_config.backend = "retry";
      chaos_config.retry_inner = "socket";
      chaos_config.socket_namespace_base = 60000;
      run_one("dp_ir", chaos_config, 4, 400.0, "chaos_retry_on");
      proxy.Stop();
    }
  }

  summary.Metric("cells", cells);
  summary.Metric("failed", failed);
  summary.Metric("transport", transport);
  summary.Emit();
  return failed == 0 ? 0 : 1;
}
