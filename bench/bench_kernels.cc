// Data-plane kernel microbench: scalar vs SIMD bytes/sec for the three
// storage hot-loop primitives (storage/kernels.h). Every variant the host
// CPU supports is measured on the same buffers, so the BENCH cells record
// both the absolute scan bandwidth and the SIMD speedup the dispatch layer
// buys over the portable baseline (the acceptance bar: SelectXorScan SIMD
// >= 2x scalar, with the scalar fallback bit-identical — the identity is
// tests/kernels_test.cc's job, the throughput is measured here).
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.h"

#include "storage/kernels.h"
#include "util/random.h"
#include "util/table.h"

namespace dpstore {
namespace {

using kernels::Variant;

// L2-resident working set (512 KiB per buffer): the speedup criterion
// compares instruction throughput, so the pass must not be bound by DRAM
// bandwidth — at multi-MiB sizes every variant converges on the memory
// wall and the ratio collapses toward 1. The arena-scale (DRAM-bound)
// number lives in bench_dpf_pir's scan study instead.
constexpr size_t kBytes = size_t{512} << 10;
constexpr size_t kBlockSize = 1024;
constexpr size_t kBlockCount = kBytes / kBlockSize;

std::vector<uint8_t> RandomBytes(Rng* rng, size_t len) {
  std::vector<uint8_t> bytes(len);
  for (size_t i = 0; i < len; ++i) {
    bytes[i] = static_cast<uint8_t>(rng->Uniform(256));
  }
  return bytes;
}

/// Best-of-trials throughput of `fn` (one pass = `bytes_per_pass` bytes),
/// in GiB/s. Repetitions are calibrated so a trial runs ~50 ms.
template <typename Fn>
double MeasureGiBs(size_t bytes_per_pass, const Fn& fn) {
  using Clock = std::chrono::steady_clock;
  fn();  // warm caches and the dispatch
  int reps = 1;
  double best_sec_per_pass = 0.0;
  for (;;) {
    const auto start = Clock::now();
    for (int r = 0; r < reps; ++r) fn();
    const double sec =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (sec >= 0.05 || reps >= (1 << 16)) {
      best_sec_per_pass = sec / reps;
      break;
    }
    reps *= 2;
  }
  for (int trial = 0; trial < 2; ++trial) {
    const auto start = Clock::now();
    for (int r = 0; r < reps; ++r) fn();
    const double sec =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (sec / reps < best_sec_per_pass) best_sec_per_pass = sec / reps;
  }
  return static_cast<double>(bytes_per_pass) / best_sec_per_pass /
         static_cast<double>(size_t{1} << 30);
}

std::vector<Variant> SupportedVariants() {
  std::vector<Variant> variants;
  for (Variant v : {Variant::kScalar, Variant::kSse2, Variant::kAvx2}) {
    if (kernels::VariantSupported(v)) variants.push_back(v);
  }
  return variants;
}

void Run() {
  Rng rng(2026);
  std::vector<uint8_t> src = RandomBytes(&rng, kBytes);
  std::vector<uint8_t> dst = RandomBytes(&rng, kBytes);
  std::vector<uint64_t> bits(kBlockCount / 64);
  for (uint64_t& word : bits) {
    word = (rng.Uniform(uint64_t{1} << 32) << 32) ^
           rng.Uniform(uint64_t{1} << 32);
  }
  std::vector<kernels::CopyRun> runs(kBytes / 256);
  for (size_t k = 0; k < runs.size(); ++k) {
    runs[k] = {dst.data() + k * 256, src.data() + k * 256, 256};
  }

  PrintBanner(std::cout,
              "Data-plane kernels: bytes/sec per variant (512 KiB "
              "L2-resident passes, 1 KiB blocks)");
  TablePrinter table({"kernel", "variant", "GiB/s", "vs scalar"});

  bench::BenchJson xa("kernels_xor_accumulate");
  bench::BenchJson sxs("kernels_select_xor_scan");
  bench::BenchJson cr("kernels_copy_runs");
  for (bench::BenchJson* cell : {&xa, &sxs, &cr}) {
    cell->Metric("bytes_per_pass", kBytes);
    cell->Metric("active_variant",
                 std::string(kernels::VariantName(kernels::ActiveVariant())));
  }
  sxs.Metric("block_size", kBlockSize);

  double scalar_xa = 0, scalar_sxs = 0, scalar_cr = 0;
  double best_simd_sxs = 0;
  for (Variant v : SupportedVariants()) {
    const std::string name = kernels::VariantName(v);
    const double gibs_xa = MeasureGiBs(kBytes, [&] {
      kernels::XorAccumulateVariant(v, dst.data(), src.data(), kBytes);
    });
    std::vector<uint8_t> answer(kBlockSize, 0);
    const double gibs_sxs = MeasureGiBs(kBytes, [&] {
      kernels::SelectXorScanVariant(v, answer.data(), src.data(),
                                    kBlockCount, kBlockSize, bits.data(),
                                    /*bit_offset=*/0);
    });
    const double gibs_cr = MeasureGiBs(kBytes, [&] {
      kernels::CopyRunsVariant(v, runs.data(), runs.size());
    });
    if (v == Variant::kScalar) {
      scalar_xa = gibs_xa;
      scalar_sxs = gibs_sxs;
      scalar_cr = gibs_cr;
    } else if (gibs_sxs > best_simd_sxs) {
      best_simd_sxs = gibs_sxs;
    }
    xa.Metric(name + "_gib_s", gibs_xa);
    sxs.Metric(name + "_gib_s", gibs_sxs);
    cr.Metric(name + "_gib_s", gibs_cr);
    table.AddRow()
        .AddCell("xor_accumulate")
        .AddCell(name)
        .AddDouble(gibs_xa, 2)
        .AddDouble(scalar_xa > 0 ? gibs_xa / scalar_xa : 1.0, 2);
    table.AddRow()
        .AddCell("select_xor_scan")
        .AddCell(name)
        .AddDouble(gibs_sxs, 2)
        .AddDouble(scalar_sxs > 0 ? gibs_sxs / scalar_sxs : 1.0, 2);
    table.AddRow()
        .AddCell("copy_runs")
        .AddCell(name)
        .AddDouble(gibs_cr, 2)
        .AddDouble(scalar_cr > 0 ? gibs_cr / scalar_cr : 1.0, 2);
  }
  if (best_simd_sxs > 0 && scalar_sxs > 0) {
    sxs.Metric("simd_over_scalar", best_simd_sxs / scalar_sxs);
  }
  table.Print(std::cout);
  std::cout << "\nThe dispatched scan (variant "
            << kernels::VariantName(kernels::ActiveVariant())
            << ") is what every kDpfEval and xor_pir answer runs through;\n"
               "DPSTORE_KERNEL=scalar forces the portable row everywhere.\n";
  xa.Emit();
  sxs.Emit();
  cr.Emit();
}

}  // namespace
}  // namespace dpstore

int main() {
  dpstore::bench::BenchJson json("kernels");
  dpstore::Run();
  json.Emit();
  return 0;
}
