// Experiment E7 (Lemmas 6.4/6.5, Theorem 6.1): empirical transcript-ratio
// measurement for DP-RAM. For adjacent single-query sequences we histogram
// the (download, overwrite) pair at the divergent position across fresh
// scheme instances, and compare the plug-in epsilon-hat against the proof's
// per-position bound ln(n^2/p) + ln(n/p) and the epsilon = Theta(log n)
// claim, across n and p.
#include <cmath>
#include <iostream>

#include "bench_json.h"

#include "analysis/empirical_dp.h"
#include "core/dp_params.h"
#include "core/dp_ram.h"
#include "util/table.h"

namespace dpstore {
namespace {

constexpr size_t kRecordSize = 16;

std::vector<Block> MakeDatabase(uint64_t n) {
  std::vector<Block> db(n);
  for (uint64_t i = 0; i < n; ++i) db[i] = MarkerBlock(i, kRecordSize);
  return db;
}

void Run() {
  PrintBanner(std::cout,
              "E7 / Theorem 6.1: empirical per-position epsilon of DP-RAM "
              "(categorical events, 12000*n trial pairs/config)");
  // Closed-form worst event: (d=q1, o=q1) has probability ((1-p) + p/n)^2
  // under "read q1" but (p/n)^2 under "read q2", so the exact per-position
  // epsilon is 2 ln(1 + (1-p) n / p) - the quantity the Lemma 6.4/6.5
  // bounds over-approximate as (n^2/p)(n/p).
  TablePrinter table({"n", "p", "empirical_eps", "exact_eps",
                      "per_position_bound", "one_sided_mass"});
  for (uint64_t n : {uint64_t{8}, uint64_t{16}, uint64_t{32}}) {
    for (double p : {0.25, 0.5}) {
      const int trials = static_cast<int>(12000 * n);
      std::vector<Block> db = MakeDatabase(n);
      EventHistogram h1;
      EventHistogram h2;
      const BlockId q1 = 1;
      const BlockId q2 = 2;
      for (int t = 0; t < trials; ++t) {
        DpRamOptions options;
        options.stash_probability = p;
        options.seed = 50000 + static_cast<uint64_t>(t);
        {
          DpRam ram(db, options);
          DPSTORE_CHECK_OK(ram.Read(q1).status());
          h1.Add(DpRamCategoricalQueryEvent(ram.server().transcript(), 0, q1,
                                            q2));
        }
        {
          DpRam ram(db, options);
          DPSTORE_CHECK_OK(ram.Read(q2).status());
          h2.Add(DpRamCategoricalQueryEvent(ram.server().transcript(), 0, q1,
                                            q2));
        }
      }
      DpEstimate est = EstimatePrivacy(h1, h2, /*min_count=*/10);
      double exact =
          2.0 * std::log1p((1.0 - p) * static_cast<double>(n) / p);
      double bound = std::log(static_cast<double>(n) * n / p) +
                     std::log(static_cast<double>(n) / p);
      table.AddRow()
          .AddUint(n)
          .AddDouble(p, 2)
          .AddDouble(est.epsilon_hat, 2)
          .AddDouble(exact, 2)
          .AddDouble(bound, 2)
          .AddScientific(est.one_sided_mass);
    }
  }
  table.Print(std::cout);
  std::cout
      << "\nPaper claim: each divergent position contributes a transcript\n"
         "ratio of at most (n^2/p)(n/p) (Lemmas 6.4/6.5), and only 3\n"
         "positions diverge (Lemma 6.7), giving eps = O(log n) overall.\n"
         "Measured: the empirical per-position epsilon matches the exact\n"
         "2 ln(1+(1-p)n/p) (from below, sampling bias only), stays under\n"
         "the proof bound, scales like log(n/p), and no one-sided events\n"
         "appear (every transcript has positive probability under both\n"
         "sequences - pure DP).\n";
}

}  // namespace
}  // namespace dpstore

int main() {
  dpstore::bench::BenchJson json("dpram_privacy");
  dpstore::Run();
  json.Emit();
  return 0;
}
