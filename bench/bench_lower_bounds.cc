// Experiment E8 (Theorems 3.3, 3.4, 3.7, C.1): the lower-bound landscape.
// Prints (a) the Theorem 3.7 surface log_c((1-alpha) n / e^eps) over
// (eps, c), showing that constant overhead forces eps = Omega(log n);
// (b) the minimum epsilon compatible with a given overhead budget; and
// (c) where the paper's constructions sit relative to their bounds.
#include <cmath>
#include <iostream>

#include "bench_json.h"

#include "core/dp_params.h"
#include "core/dp_ram.h"
#include "util/table.h"

namespace dpstore {
namespace {

void SurfaceTable() {
  constexpr uint64_t kN = 1 << 20;
  double log_n = std::log(static_cast<double>(kN));
  PrintBanner(std::cout,
              "E8a / Theorem 3.7: ops-per-query lower bound, n=2^20 "
              "(rows: eps, cols: client storage c)");
  TablePrinter table({"epsilon", "c=2", "c=16", "c=256", "c=4096"});
  for (double eps :
       {0.0, 1.0, 0.25 * log_n, 0.5 * log_n, 0.75 * log_n, log_n}) {
    auto row = &table.AddRow().AddCell(
        FormatDouble(eps, 2) +
        (eps == 0.0 ? " (oblivious)"
                    : (eps >= log_n ? " (=ln n)" : "")));
    for (uint64_t c : {uint64_t{2}, uint64_t{16}, uint64_t{256},
                       uint64_t{4096}}) {
      row->AddDouble(DpRamLowerBound(kN, eps, 0.0, c), 2);
    }
  }
  table.Print(std::cout);
}

void MinEpsilonTable() {
  PrintBanner(std::cout,
              "E8b: minimum epsilon forced by an overhead budget "
              "(Theorem 3.7 inverted, c=8)");
  TablePrinter table({"n", "overhead=3", "overhead=8", "overhead=log2(n)",
                      "ln(n)"});
  for (uint64_t log_n = 10; log_n <= 24; log_n += 2) {
    uint64_t n = uint64_t{1} << log_n;
    double ln_n = std::log(static_cast<double>(n));
    table.AddRow()
        .AddCell("2^" + std::to_string(log_n))
        .AddDouble(DpRamMinEpsilonForOverhead(n, 3.0, 0.0, 8), 2)
        .AddDouble(DpRamMinEpsilonForOverhead(n, 8.0, 0.0, 8), 2)
        .AddDouble(DpRamMinEpsilonForOverhead(
                       n, std::log2(static_cast<double>(n)), 0.0, 8),
                   2)
        .AddDouble(ln_n, 2);
  }
  table.Print(std::cout);
}

void ConstructionsVsBounds() {
  PrintBanner(std::cout,
              "E8c: the paper's constructions against their lower bounds");
  TablePrinter table({"primitive", "n", "construction", "lower_bound",
                      "construction_eps", "eps_floor(Thm 3.7)"});
  constexpr uint64_t kN = 1 << 16;
  double ln_n = std::log(static_cast<double>(kN));
  // DP-IR at eps = ln n, alpha = 0.1.
  uint64_t k = DpIrBlocksPerQuery(kN, ln_n, 0.1);
  table.AddRow()
      .AddCell("DP-IR (Thm 5.1)")
      .AddUint(kN)
      .AddCell(std::to_string(k) + " blocks")
      .AddDouble(DpIrLowerBound(kN, ln_n, 0.1, 0.0), 2)
      .AddDouble(DpIrAchievedEpsilon(kN, k, 0.1), 2)
      .AddCell("-");
  // DP-RAM at default p.
  double p = DefaultStashProbability(kN);
  table.AddRow()
      .AddCell("DP-RAM (Thm 6.1)")
      .AddUint(kN)
      .AddCell("3 blocks")
      .AddDouble(DpRamLowerBound(kN, DpRamEpsilonUpperBound(kN, p), 0.0, 64),
                 2)
      .AddDouble(DpRamEpsilonUpperBound(kN, p), 2)
      .AddDouble(DpRamMinEpsilonForOverhead(kN, 3.0, 0.0, 64), 2);
  table.Print(std::cout);
}

void Run() {
  SurfaceTable();
  MinEpsilonTable();
  ConstructionsVsBounds();
  std::cout
      << "\nPaper claim: the Theorem 3.7 surface collapses to O(1) exactly\n"
         "when eps reaches Theta(log n) (E8a); any O(1)-overhead scheme is\n"
         "forced to eps = Omega(log n) as n grows (E8b); and both\n"
         "constructions sit within constants of their bounds at\n"
         "eps = Theta(log n) (E8c).\n";
}

}  // namespace
}  // namespace dpstore

int main() {
  dpstore::bench::BenchJson json("lower_bounds");
  dpstore::Run();
  json.Emit();
  return 0;
}
