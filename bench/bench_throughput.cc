// Experiment E13, rebuilt on the exchange-shaped storage transport: a
// registry-driven throughput sweep over schemes x backends x workloads,
// a scale sweep locating where sharding/async pays on real hardware, a
// pipelined-replay sweep over exchange depths, and a raw transport
// microbench over batch sizes. Blocks-per-query is the paper's cost model;
// this harness confirms the ordering survives real execution (encryption,
// hashing, memory traffic) and reports measured wall-clock next to the
// modeled LAN/WAN latency on every cell.
//
// Cells emitted:
//   BENCH_throughput_<scheme>__<backend>.json        scheme sweep (n=256)
//   BENCH_throughput_scale_<scheme>_n<log2 n>_<backend>_s<shards>.json
//   BENCH_throughput_socket_<scheme>_n<log2 n>.json   modeled vs measured
//   BENCH_throughput_pipeline_s<shards>_d<depth>.json
//   BENCH_throughput_transport_<backend>_b<batch>.json
//   BENCH_throughput.json                            closing summary
//
// Scheme and scale cells run with counting-only transcripts, so the sweep's
// memory stays flat no matter how much traffic it pushes; the pipeline
// sweep needs per-event transcripts for its recording pass only.
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"

#include "analysis/cost_model.h"
#include "analysis/driver.h"
#include "analysis/workload.h"
#include "core/scheme_registry.h"
#include "storage/async_sharded_backend.h"
#include "storage/fusing_backend.h"
#include "storage/server.h"
#include "storage/sharded_backend.h"
#include "storage/write_back_cache.h"
#include "util/check.h"

namespace dpstore {
namespace {

constexpr uint64_t kRecords = 256;
constexpr size_t kRecordSize = 64;
constexpr size_t kOpsPerCell = 96;
constexpr double kWriteFraction = 0.25;
constexpr double kZipfTheta = 0.99;  // YCSB default skew
const char* const kBackends[] = {"memory", "sharded", "async_sharded",
                                 "cached"};

SchemeConfig CellConfig(const std::string& backend) {
  SchemeConfig config;
  config.n = kRecords;
  config.value_size = kRecordSize;
  config.seed = 20260728;
  config.backend = backend;
  config.shards = 4;
  // Half the records fit: big enough that a Path ORAM path (Z*(L+1) ~ 40
  // blocks) fills rather than scan-bypasses, small enough that hit rates
  // still discriminate between schemes.
  config.cache_blocks = kRecords / 2;
  config.counting_only_transcript = true;
  return config;
}

void EmitCell(const std::string& scheme, const std::string& backend,
              const std::string& workload, const WorkloadReport& report,
              const WorkloadReport* uniform_reference = nullptr,
              const CacheStats* cache = nullptr) {
  bench::BenchJson json("throughput_" + scheme + "__" + backend);
  json.Metric("scheme", scheme);
  json.Metric("backend", backend);
  json.Metric("workload", workload);
  json.Metric("ops", report.operations);
  json.Metric("perp_results", report.perp_results);
  json.Metric("blocks_per_op", report.BlocksPerOp());
  json.Metric("bytes_per_op", report.BytesPerOp());
  json.Metric("roundtrips_per_op", report.RoundtripsPerOp());
  json.Metric("lan_ms_per_op", report.LatencyPerOpMs(kLanModel));
  json.Metric("wan_ms_per_op", report.LatencyPerOpMs(kWanModel));
  json.Metric("host_wall_ms", report.wall_ms);
  json.Metric("host_ops_per_sec",
              report.wall_ms > 0.0
                  ? 1000.0 * static_cast<double>(report.operations) /
                        report.wall_ms
                  : 0.0);
  if (uniform_reference != nullptr) {
    json.Metric("uniform_blocks_per_op", uniform_reference->BlocksPerOp());
    json.Metric("uniform_roundtrips_per_op",
                uniform_reference->RoundtripsPerOp());
  }
  if (cache != nullptr) {
    // How the write-back cache interacted with this scheme's (privacy-
    // mandated) traffic on the skewed workload: schemes whose transcripts
    // are dummy-heavy or re-randomized defeat their own hits.
    json.Metric("cache_hits", cache->download_hits);
    json.Metric("cache_misses", cache->download_misses);
    json.Metric("cache_hit_rate", cache->HitRate());
    json.Metric("cache_uploads_absorbed", cache->uploads_absorbed);
    json.Metric("cache_writeback_blocks", cache->writeback_blocks);
  }
  json.Emit();
}

int SweepRamSchemes() {
  int cells = 0;
  for (const char* backend : kBackends) {
    for (const std::string& name :
         SchemeRegistry::Instance().RamSchemeNames()) {
      SchemeConfig config = CellConfig(backend);
      if (config.backend == "cached") {
        config.cache_stats = std::make_shared<CacheStats>();
      }
      auto scheme = SchemeRegistry::Instance().MakeRam(name, config);
      DPSTORE_CHECK_OK(scheme.status());
      // Each cell runs the skewed Zipf(0.99) scenario after a uniform pass;
      // the emitted line reports the Zipf run with the uniform blocks/
      // roundtrips per op as reference metrics (they should agree: every
      // scheme's transcript shape is query-independent).
      Rng rng(config.seed);
      auto uniform = MakeRamWorkload("uniform", &rng, config.n, kOpsPerCell,
                                     kWriteFraction);
      DPSTORE_CHECK_OK(uniform.status());
      auto uniform_report = RunRamWorkload(scheme->get(), *uniform);
      DPSTORE_CHECK_OK(uniform_report.status());
      // Snapshot the cache counters so the emitted cell meters the Zipf
      // pass alone (the uniform pass doubles as cache warm-up).
      CacheStats cache_before;
      if (config.cache_stats != nullptr) cache_before = *config.cache_stats;
      auto zipf = MakeRamWorkload("zipf:0.99", &rng, config.n, kOpsPerCell,
                                  kWriteFraction);
      DPSTORE_CHECK_OK(zipf.status());
      auto zipf_report = RunRamWorkload(scheme->get(), *zipf);
      DPSTORE_CHECK_OK(zipf_report.status());
      CacheStats zipf_cache;
      if (config.cache_stats != nullptr) {
        zipf_cache = *config.cache_stats - cache_before;
      }
      EmitCell(name, backend, "zipf:0.99", *zipf_report, &*uniform_report,
               config.cache_stats != nullptr ? &zipf_cache : nullptr);
      ++cells;
    }
  }
  return cells;
}

int SweepKvsSchemes() {
  int cells = 0;
  for (const char* backend : kBackends) {
    for (const std::string& name :
         SchemeRegistry::Instance().KvsSchemeNames()) {
      SchemeConfig config = CellConfig(backend);
      if (config.backend == "cached") {
        config.cache_stats = std::make_shared<CacheStats>();
      }
      auto scheme = SchemeRegistry::Instance().MakeKvs(name, config);
      DPSTORE_CHECK_OK(scheme.status());
      Rng rng(config.seed + 1);
      // YCSB-B-style: 75% reads over Zipf(0.99)-skewed keys.
      KvsSequence ops = YcsbKvsSequence(&rng, config.n / 2, kOpsPerCell,
                                        /*read_fraction=*/0.75, kZipfTheta);
      auto report = RunKvsWorkload(scheme->get(), ops);
      DPSTORE_CHECK_OK(report.status());
      EmitCell(name, backend, "ycsb_b_zipf:0.99", *report, nullptr,
               config.cache_stats.get());
      ++cells;
    }
  }
  return cells;
}

// --- Scale sweep: where do sharding and async pay? ---------------------------

struct ScaleCase {
  const char* scheme;
  uint64_t log2_n;
  size_t ops;
};

/// Batched schemes at growing n. trivial_pir (one n-block exchange per
/// query) reaches n = 2^20, where a query moves 64 MiB and the per-shard
/// fan-out is pure transport; the crypto-heavy schemes stop earlier to keep
/// the sweep affordable under sanitizer CI runs. Op counts are sized so the
/// steady state dominates: since the transport recycles exchange buffers
/// through a BufferPool, the first op of a cell additionally pays the
/// pool's cold allocations (page-faulting in ~100 MiB at n = 2^20), which
/// at 2 ops/cell would be half the measurement instead of a fraction.
constexpr ScaleCase kScaleCases[] = {
    {"trivial_pir", 12, 16}, {"trivial_pir", 16, 8}, {"trivial_pir", 20, 8},
    {"path_oram", 12, 32},   {"path_oram", 14, 16},
    {"linear_oram", 12, 8},  {"linear_oram", 16, 4},
};
constexpr uint64_t kScaleShards[] = {1, 4, 16, 64};

int SweepScale() {
  int cells = 0;
  for (const ScaleCase& scale : kScaleCases) {
    for (const char* backend : {"sharded", "async_sharded"}) {
      for (uint64_t shards : kScaleShards) {
        SchemeConfig config;
        config.n = uint64_t{1} << scale.log2_n;
        config.value_size = kRecordSize;
        config.seed = 31337;
        config.backend = backend;
        config.shards = shards;
        config.counting_only_transcript = true;  // bounds sweep memory
        auto scheme = SchemeRegistry::Instance().MakeRam(scale.scheme, config);
        DPSTORE_CHECK_OK(scheme.status());
        Rng rng(config.seed);
        auto workload = MakeRamWorkload("uniform", &rng, config.n, scale.ops,
                                        /*write_fraction=*/0.0);
        DPSTORE_CHECK_OK(workload.status());
        auto report = RunRamWorkload(scheme->get(), *workload);
        DPSTORE_CHECK_OK(report.status());
        bench::BenchJson json("throughput_scale_" +
                              std::string(scale.scheme) + "_n" +
                              std::to_string(scale.log2_n) + "_" + backend +
                              "_s" + std::to_string(shards));
        json.Metric("scheme", std::string(scale.scheme));
        json.Metric("backend", std::string(backend));
        json.Metric("log2_n", scale.log2_n);
        json.Metric("shards", shards);
        json.Metric("ops", report->operations);
        json.Metric("blocks_per_op", report->BlocksPerOp());
        json.Metric("roundtrips_per_op", report->RoundtripsPerOp());
        json.Metric("lan_ms_per_op", report->LatencyPerOpMs(kLanModel));
        json.Metric("wan_ms_per_op", report->LatencyPerOpMs(kWanModel));
        json.Metric("wall_ms_per_op",
                    report->operations == 0
                        ? 0.0
                        : report->wall_ms /
                              static_cast<double>(report->operations));
        json.Emit();
        ++cells;
      }
    }
  }
  return cells;
}

// --- Socket transport: modeled vs measured -----------------------------------

/// The real-RPC cells: the same scale-sweep shape, but over the `socket`
/// backend (in-process dpstore_server dispatch loop over a socketpair), so
/// every cell reports MEASURED wall-clock per exchange next to the modeled
/// LAN/WAN numbers the CostModel has been standing in with. n stays modest:
/// these cells also run under the sanitizer CI sweeps, where socket I/O
/// pays 5-10x.
constexpr ScaleCase kSocketCases[] = {
    {"trivial_pir", 12, 16},      {"trivial_pir", 16, 8},
    {"path_oram", 12, 32},        {"dp_ram_retrieval", 12, 64},
    {"linear_oram", 12, 8},
};

int SweepSocket() {
  int cells = 0;
  for (const ScaleCase& scale : kSocketCases) {
    SchemeConfig config;
    config.n = uint64_t{1} << scale.log2_n;
    config.value_size = kRecordSize;
    config.seed = 31337;
    config.backend = "socket";  // socketpair fallback: no external server
    config.counting_only_transcript = true;
    auto scheme = SchemeRegistry::Instance().MakeRam(scale.scheme, config);
    DPSTORE_CHECK_OK(scheme.status());
    Rng rng(config.seed);
    auto workload = MakeRamWorkload("uniform", &rng, config.n, scale.ops,
                                    /*write_fraction=*/0.0);
    DPSTORE_CHECK_OK(workload.status());
    auto report = RunRamWorkload(scheme->get(), *workload);
    DPSTORE_CHECK_OK(report.status());
    bench::BenchJson json("throughput_socket_" + std::string(scale.scheme) +
                          "_n" + std::to_string(scale.log2_n));
    json.Metric("scheme", std::string(scale.scheme));
    json.Metric("backend", std::string("socket"));
    json.Metric("log2_n", scale.log2_n);
    json.Metric("ops", report->operations);
    json.Metric("blocks_per_op", report->BlocksPerOp());
    json.Metric("roundtrips_per_op", report->RoundtripsPerOp());
    // The comparison this transport exists for: modeled vs measured.
    json.Metric("lan_ms_per_op_modeled", report->LatencyPerOpMs(kLanModel));
    json.Metric("wan_ms_per_op_modeled", report->LatencyPerOpMs(kWanModel));
    json.Metric("measured_socket_ms_per_op", report->MeasuredMsPerOp());
    json.Metric("wall_ms_per_op",
                report->operations == 0
                    ? 0.0
                    : report->wall_ms /
                          static_cast<double>(report->operations));
    json.Emit();
    ++cells;
  }
  return cells;
}

// --- Pipelined exchange replay ----------------------------------------------

/// Records one Path ORAM main-tree transcript, then replays its per-query
/// exchanges through Submit/Wait at growing pipeline depth on sync and
/// async sharded backends. Depth moves measured wall-clock only — the
/// transport axes (and the replayed bytes) are depth-invariant by contract.
int SweepPipeline() {
  SchemeConfig config;
  config.n = uint64_t{1} << 12;
  config.value_size = kRecordSize;
  config.seed = 271828;
  std::vector<StorageBackend*> observed;
  config.backend_factory = [&observed](uint64_t n, size_t block_size) {
    auto backend = std::make_unique<StorageServer>(n, block_size);
    observed.push_back(backend.get());
    return backend;
  };
  auto scheme = SchemeRegistry::Instance().MakeRam("path_oram", config);
  DPSTORE_CHECK_OK(scheme.status());
  Rng rng(config.seed);
  auto workload = MakeRamWorkload("uniform", &rng, config.n, 64,
                                  /*write_fraction=*/0.25);
  DPSTORE_CHECK_OK(workload.status());
  DPSTORE_CHECK_OK(RunRamWorkload(scheme->get(), *workload).status());
  DPSTORE_CHECK(!observed.empty());
  StorageBackend* main_tree = observed[0];  // built before the posmap orams
  std::vector<StorageRequest> plan = ExchangePlanFromTranscript(
      main_tree->transcript(), main_tree->block_size());

  int cells = 0;
  for (uint64_t shards : {uint64_t{1}, uint64_t{4}, uint64_t{16}}) {
    for (uint64_t depth : {uint64_t{1}, uint64_t{2}, uint64_t{4},
                           uint64_t{8}}) {
      AsyncShardedBackend backend(main_tree->n(), main_tree->block_size(),
                                  shards);
      auto report = RunExchangePipeline(&backend, plan, depth);
      DPSTORE_CHECK_OK(report.status());
      bench::BenchJson json("throughput_pipeline_s" + std::to_string(shards) +
                            "_d" + std::to_string(depth));
      json.Metric("scheme", std::string("path_oram_replay"));
      json.Metric("shards", shards);
      json.Metric("depth", depth);
      json.Metric("exchanges", report->exchanges);
      json.Metric("blocks", report->transport.blocks_moved);
      json.Metric("roundtrips", report->transport.roundtrips);
      json.Metric("wall_ms", report->wall_ms);
      json.Metric("ms_per_exchange", report->MsPerExchange());
      json.Metric("lan_ms_modeled",
                  kLanModel.StatsLatencyMs(report->transport));
      json.Metric("wan_ms_modeled",
                  kWanModel.StatsLatencyMs(report->transport));
      json.Metric("reply_hash", report->reply_hash);
      json.Emit();
      ++cells;
    }
  }
  return cells;
}

// --- Exchange fusion ---------------------------------------------------------

/// Records a DP-RAM-retrieval transcript — a long run of small same-
/// direction download exchanges, the shape where per-exchange overhead
/// dominates — and replays it through the FusingBackend at growing block
/// budgets. Fusion trades inner roundtrips for batch size: the adversary's
/// view (the decorator transcript, the transport stats, the reply hash) is
/// budget-invariant by contract; only the inner wire schedule and the
/// wall-clock move.
int SweepFusion() {
  SchemeConfig config;
  config.n = uint64_t{1} << 12;
  config.value_size = kRecordSize;
  config.seed = 424242;
  std::vector<StorageBackend*> observed;
  config.backend_factory = [&observed](uint64_t n, size_t block_size) {
    auto backend = std::make_unique<StorageServer>(n, block_size);
    observed.push_back(backend.get());
    return backend;
  };
  auto scheme = SchemeRegistry::Instance().MakeRam("dp_ram_retrieval", config);
  DPSTORE_CHECK_OK(scheme.status());
  Rng rng(config.seed);
  auto workload = MakeRamWorkload("uniform", &rng, config.n, 256,
                                  /*write_fraction=*/0.0);
  DPSTORE_CHECK_OK(workload.status());
  DPSTORE_CHECK_OK(RunRamWorkload(scheme->get(), *workload).status());
  DPSTORE_CHECK(!observed.empty());
  StorageBackend* recorded = observed[0];
  std::vector<StorageRequest> plan = ExchangePlanFromTranscript(
      recorded->transcript(), recorded->block_size());

  int cells = 0;
  for (uint64_t budget : {uint64_t{1}, uint64_t{4}, uint64_t{16},
                          uint64_t{64}}) {
    FusingBackend backend(
        std::make_unique<StorageServer>(recorded->n(),
                                        recorded->block_size()),
        budget);
    auto report = RunExchangePipeline(&backend, plan, /*depth=*/16);
    DPSTORE_CHECK_OK(report.status());
    bench::BenchJson json("throughput_fusion_b" + std::to_string(budget));
    json.Metric("scheme", std::string("dp_ram_retrieval_replay"));
    json.Metric("fuse_blocks", budget);
    json.Metric("exchanges_in", backend.exchanges_in());
    json.Metric("fused_out", backend.fused_out());
    json.Metric("inner_roundtrips",
                backend.inner().transcript().roundtrip_count());
    json.Metric("adversary_roundtrips", report->transport.roundtrips);
    json.Metric("blocks", report->transport.blocks_moved);
    json.Metric("replay_wall_ms", report->wall_ms);
    json.Metric("ms_per_exchange", report->MsPerExchange());
    json.Metric("wan_ms_modeled_inner",
                kWanModel.TranscriptLatencyMs(backend.inner().transcript()));
    json.Metric("wan_ms_modeled_adversary",
                kWanModel.StatsLatencyMs(report->transport));
    json.Metric("reply_hash", report->reply_hash);
    json.Emit();
    ++cells;
  }
  return cells;
}

// --- Raw transport batches ---------------------------------------------------

std::unique_ptr<StorageBackend> MakeTransportBackend(
    const std::string& backend, uint64_t n, size_t block_size) {
  SchemeConfig config = CellConfig(backend);
  auto factory = BackendFactoryFor(config);
  DPSTORE_CHECK_OK(factory.status());
  return (*factory)(n, block_size);
}

/// Raw transport sweep: how batching amortizes the per-exchange cost on
/// each backend topology. One cell per backend x batch size.
int SweepTransportBatches() {
  constexpr uint64_t kN = 4096;
  constexpr size_t kTransfers = 4096;  // blocks downloaded per cell
  int cells = 0;
  for (const char* backend : kBackends) {
    for (size_t batch : {size_t{1}, size_t{16}, size_t{256}}) {
      auto storage = MakeTransportBackend(backend, kN, kRecordSize);
      Rng rng(7 + batch);
      bench::BenchJson json("throughput_transport_" + std::string(backend) +
                            "_b" + std::to_string(batch));
      storage->BeginQuery();
      for (size_t moved = 0; moved < kTransfers; moved += batch) {
        std::vector<BlockId> indices(batch);
        for (BlockId& index : indices) index = rng.Uniform(kN);
        auto blocks = storage->DownloadMany(indices);
        DPSTORE_CHECK_OK(blocks.status());
      }
      json.Metric("backend", std::string(backend));
      json.Metric("batch", batch);
      json.Metric("blocks", storage->download_count());
      json.Metric("roundtrips", storage->roundtrip_count());
      json.Metric("lan_ms_total",
                  kLanModel.TranscriptLatencyMs(storage->transcript()));
      json.Metric("wan_ms_total",
                  kWanModel.TranscriptLatencyMs(storage->transcript()));
      json.Emit();
      ++cells;
    }
  }
  return cells;
}

}  // namespace
}  // namespace dpstore

int main() {
  dpstore::bench::BenchJson json("throughput");
  int cells = 0;
  cells += dpstore::SweepRamSchemes();
  cells += dpstore::SweepKvsSchemes();
  cells += dpstore::SweepScale();
  cells += dpstore::SweepSocket();
  cells += dpstore::SweepPipeline();
  cells += dpstore::SweepFusion();
  cells += dpstore::SweepTransportBatches();
  json.Metric("cells", cells);
  json.Emit();
  return 0;
}
