// Experiment E13: wall-clock throughput of every scheme (google-benchmark).
// Blocks-per-query is the paper's cost model; this harness confirms the
// ordering survives real execution (encryption, hashing, memory traffic):
// plaintext > DP-RAM >> DP-KVS > Path ORAM >> ORAM-KVS / linear ORAM.
#include <cmath>

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "analysis/workload.h"
#include "core/dp_ir.h"
#include "core/dp_kvs.h"
#include "core/dp_ram.h"
#include "oram/linear_oram.h"
#include "oram/oram_kvs.h"
#include "oram/path_oram.h"

namespace dpstore {
namespace {

constexpr size_t kRecordSize = 64;

std::vector<Block> MakeDatabase(uint64_t n) {
  std::vector<Block> db(n);
  for (uint64_t i = 0; i < n; ++i) db[i] = MarkerBlock(i, kRecordSize);
  return db;
}

void BM_PlaintextServer(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  StorageServer server(n, kRecordSize);
  Rng rng(1);
  for (auto _ : state) {
    auto block = server.Download(rng.Uniform(n));
    benchmark::DoNotOptimize(block);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlaintextServer)->Arg(1 << 14);

void BM_DpRamRead(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  DpRam ram(MakeDatabase(n), DpRamOptions{.seed = 2});
  Rng rng(3);
  for (auto _ : state) {
    auto block = ram.Read(rng.Uniform(n));
    benchmark::DoNotOptimize(block);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DpRamRead)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_DpRamWrite(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  DpRam ram(MakeDatabase(n), DpRamOptions{.seed = 4});
  Rng rng(5);
  Block value = MarkerBlock(1, kRecordSize);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ram.Write(rng.Uniform(n), value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DpRamWrite)->Arg(1 << 14);

void BM_DpIrQuery(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  StorageServer server(n, kRecordSize);
  DPSTORE_CHECK_OK(server.SetArray(MakeDatabase(n)));
  DpIrOptions options;
  options.epsilon = std::log(static_cast<double>(n));
  options.alpha = 0.1;
  DpIr ir(&server, options);
  Rng rng(7);
  for (auto _ : state) {
    auto block = ir.Query(rng.Uniform(n));
    benchmark::DoNotOptimize(block);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DpIrQuery)->Arg(1 << 14);

void BM_PathOramRead(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  PathOram oram(MakeDatabase(n), PathOramOptions{.block_size = kRecordSize});
  Rng rng(9);
  for (auto _ : state) {
    auto block = oram.Read(rng.Uniform(n));
    benchmark::DoNotOptimize(block);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PathOramRead)->Arg(1 << 10)->Arg(1 << 14);

void BM_LinearOramRead(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  LinearOram oram(MakeDatabase(n));
  Rng rng(11);
  for (auto _ : state) {
    auto block = oram.Read(rng.Uniform(n));
    benchmark::DoNotOptimize(block);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinearOramRead)->Arg(1 << 10);

void BM_DpKvsGet(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  DpKvsOptions options;
  options.capacity = n;
  options.value_size = kRecordSize;
  DpKvs kvs(options);
  for (uint64_t i = 0; i < n / 2; ++i) {
    DPSTORE_CHECK_OK(kvs.Put(ScatterKey(i), MarkerBlock(i, kRecordSize)));
  }
  Rng rng(13);
  for (auto _ : state) {
    auto value = kvs.Get(ScatterKey(rng.Uniform(n / 2)));
    benchmark::DoNotOptimize(value);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DpKvsGet)->Arg(1 << 10)->Arg(1 << 14);

void BM_DpKvsPut(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  DpKvsOptions options;
  options.capacity = n;
  options.value_size = kRecordSize;
  DpKvs kvs(options);
  Rng rng(15);
  Block value = MarkerBlock(2, kRecordSize);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kvs.Put(ScatterKey(rng.Uniform(n / 2)), value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DpKvsPut)->Arg(1 << 12);

void BM_OramKvsGet(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  OramKvsOptions options;
  options.capacity = n;
  options.value_size = kRecordSize;
  OramKvs kvs(options);
  for (uint64_t i = 0; i < n / 2; ++i) {
    DPSTORE_CHECK_OK(kvs.Put(ScatterKey(i), MarkerBlock(i, kRecordSize)));
  }
  Rng rng(17);
  for (auto _ : state) {
    auto value = kvs.Get(ScatterKey(rng.Uniform(n / 2)));
    benchmark::DoNotOptimize(value);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OramKvsGet)->Arg(1 << 10);

}  // namespace
}  // namespace dpstore

int main(int argc, char** argv) {
  dpstore::bench::BenchJson json("throughput");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  json.Emit();
  return 0;
}
