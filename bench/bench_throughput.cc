// Experiment E13, rebuilt on the storage/scheme seam: a registry-driven
// throughput sweep over schemes x backends x workloads, plus a raw
// transport microbench over batch sizes. Blocks-per-query is the paper's
// cost model; this harness confirms the ordering survives real execution
// (encryption, hashing, memory traffic) and now also reports the roundtrip
// axis the batched transport exposes:
// plaintext > DP-RAM >> DP-KVS > Path ORAM >> ORAM-KVS / linear ORAM.
//
// One BENCH_throughput_<scheme>__<backend>.json line per sweep cell, one
// BENCH_throughput_transport_<backend>_b<batch>.json line per transport
// cell, and a closing BENCH_throughput.json summary. Every cell runs with
// counting-only transcripts, so the sweep's memory stays flat no matter how
// much traffic it pushes.
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"

#include "analysis/cost_model.h"
#include "analysis/driver.h"
#include "analysis/workload.h"
#include "core/scheme_registry.h"
#include "storage/server.h"
#include "storage/sharded_backend.h"
#include "util/check.h"

namespace dpstore {
namespace {

constexpr uint64_t kRecords = 256;
constexpr size_t kRecordSize = 64;
constexpr size_t kOpsPerCell = 96;
constexpr double kWriteFraction = 0.25;
constexpr double kZipfTheta = 0.99;  // YCSB default skew
const char* const kBackends[] = {"memory", "sharded"};

SchemeConfig CellConfig(const std::string& backend) {
  SchemeConfig config;
  config.n = kRecords;
  config.value_size = kRecordSize;
  config.seed = 20260728;
  config.backend = backend;
  config.shards = 4;
  config.counting_only_transcript = true;
  return config;
}

void EmitCell(const std::string& scheme, const std::string& backend,
              const std::string& workload, const WorkloadReport& report,
              const WorkloadReport* uniform_reference = nullptr) {
  bench::BenchJson json("throughput_" + scheme + "__" + backend);
  json.Metric("scheme", scheme);
  json.Metric("backend", backend);
  json.Metric("workload", workload);
  json.Metric("ops", report.operations);
  json.Metric("perp_results", report.perp_results);
  json.Metric("blocks_per_op", report.BlocksPerOp());
  json.Metric("bytes_per_op", report.BytesPerOp());
  json.Metric("roundtrips_per_op", report.RoundtripsPerOp());
  json.Metric("lan_ms_per_op", report.LatencyPerOpMs(kLanModel));
  json.Metric("wan_ms_per_op", report.LatencyPerOpMs(kWanModel));
  json.Metric("host_wall_ms", report.wall_ms);
  json.Metric("host_ops_per_sec",
              report.wall_ms > 0.0
                  ? 1000.0 * static_cast<double>(report.operations) /
                        report.wall_ms
                  : 0.0);
  if (uniform_reference != nullptr) {
    json.Metric("uniform_blocks_per_op", uniform_reference->BlocksPerOp());
    json.Metric("uniform_roundtrips_per_op",
                uniform_reference->RoundtripsPerOp());
  }
  json.Emit();
}

int SweepRamSchemes() {
  int cells = 0;
  for (const char* backend : kBackends) {
    for (const std::string& name :
         SchemeRegistry::Instance().RamSchemeNames()) {
      SchemeConfig config = CellConfig(backend);
      auto scheme = SchemeRegistry::Instance().MakeRam(name, config);
      DPSTORE_CHECK_OK(scheme.status());
      // Each cell runs the skewed Zipf(0.99) scenario after a uniform pass;
      // the emitted line reports the Zipf run with the uniform blocks/
      // roundtrips per op as reference metrics (they should agree: every
      // scheme's transcript shape is query-independent).
      Rng rng(config.seed);
      auto uniform = MakeRamWorkload("uniform", &rng, config.n, kOpsPerCell,
                                     kWriteFraction);
      DPSTORE_CHECK_OK(uniform.status());
      auto uniform_report = RunRamWorkload(scheme->get(), *uniform);
      DPSTORE_CHECK_OK(uniform_report.status());
      auto zipf = MakeRamWorkload("zipf:0.99", &rng, config.n, kOpsPerCell,
                                  kWriteFraction);
      DPSTORE_CHECK_OK(zipf.status());
      auto zipf_report = RunRamWorkload(scheme->get(), *zipf);
      DPSTORE_CHECK_OK(zipf_report.status());
      EmitCell(name, backend, "zipf:0.99", *zipf_report, &*uniform_report);
      ++cells;
    }
  }
  return cells;
}

int SweepKvsSchemes() {
  int cells = 0;
  for (const char* backend : kBackends) {
    for (const std::string& name :
         SchemeRegistry::Instance().KvsSchemeNames()) {
      SchemeConfig config = CellConfig(backend);
      auto scheme = SchemeRegistry::Instance().MakeKvs(name, config);
      DPSTORE_CHECK_OK(scheme.status());
      Rng rng(config.seed + 1);
      // YCSB-B-style: 75% reads over Zipf(0.99)-skewed keys.
      KvsSequence ops = YcsbKvsSequence(&rng, config.n / 2, kOpsPerCell,
                                        /*read_fraction=*/0.75, kZipfTheta);
      auto report = RunKvsWorkload(scheme->get(), ops);
      DPSTORE_CHECK_OK(report.status());
      EmitCell(name, backend, "ycsb_b_zipf:0.99", *report);
      ++cells;
    }
  }
  return cells;
}

std::unique_ptr<StorageBackend> MakeTransportBackend(
    const std::string& backend, uint64_t n, size_t block_size) {
  SchemeConfig config = CellConfig(backend);
  auto factory = BackendFactoryFor(config);
  DPSTORE_CHECK_OK(factory.status());
  return (*factory)(n, block_size);
}

/// Raw transport sweep: how batching amortizes the per-exchange cost on
/// each backend topology. One cell per backend x batch size.
int SweepTransportBatches() {
  constexpr uint64_t kN = 4096;
  constexpr size_t kTransfers = 4096;  // blocks downloaded per cell
  int cells = 0;
  for (const char* backend : kBackends) {
    for (size_t batch : {size_t{1}, size_t{16}, size_t{256}}) {
      auto storage = MakeTransportBackend(backend, kN, kRecordSize);
      Rng rng(7 + batch);
      bench::BenchJson json("throughput_transport_" + std::string(backend) +
                            "_b" + std::to_string(batch));
      storage->BeginQuery();
      for (size_t moved = 0; moved < kTransfers; moved += batch) {
        std::vector<BlockId> indices(batch);
        for (BlockId& index : indices) index = rng.Uniform(kN);
        auto blocks = storage->DownloadMany(indices);
        DPSTORE_CHECK_OK(blocks.status());
      }
      json.Metric("backend", std::string(backend));
      json.Metric("batch", batch);
      json.Metric("blocks", storage->download_count());
      json.Metric("roundtrips", storage->roundtrip_count());
      json.Metric("lan_ms_total",
                  kLanModel.TranscriptLatencyMs(storage->transcript()));
      json.Metric("wan_ms_total",
                  kWanModel.TranscriptLatencyMs(storage->transcript()));
      json.Emit();
      ++cells;
    }
  }
  return cells;
}

}  // namespace
}  // namespace dpstore

int main() {
  dpstore::bench::BenchJson json("throughput");
  int cells = 0;
  cells += dpstore::SweepRamSchemes();
  cells += dpstore::SweepKvsSchemes();
  cells += dpstore::SweepTransportBatches();
  json.Metric("cells", cells);
  json.Emit();
  return 0;
}
