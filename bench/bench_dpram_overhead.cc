// Experiment E5 (Theorem 6.1): DP-RAM moves O(1) blocks per query at every
// n while Path ORAM grows Theta(log n) and the trivial scan Theta(n). We
// run uniform and Zipf read/write workloads across n and report measured
// blocks/query and roundtrips, plus the recursive-position-map Path ORAM
// the paper's related work ([50]) is built on.
#include <iostream>

#include "bench_json.h"

#include "analysis/cost_model.h"
#include "analysis/workload.h"
#include "core/dp_ram.h"
#include "oram/linear_oram.h"
#include "oram/path_oram.h"
#include "util/table.h"

namespace dpstore {
namespace {

constexpr size_t kRecordSize = 64;

std::vector<Block> MakeDatabase(uint64_t n) {
  std::vector<Block> db(n);
  for (uint64_t i = 0; i < n; ++i) db[i] = MarkerBlock(i, kRecordSize);
  return db;
}

template <typename Scheme>
double MeasureBlocksPerQuery(Scheme* scheme, const RamSequence& ops) {
  scheme->server().ResetTranscript();
  for (const RamQuery& op : ops) {
    if (op.is_write) {
      DPSTORE_CHECK_OK(scheme->Write(op.index,
                                     MarkerBlock(op.index, kRecordSize)));
    } else {
      DPSTORE_CHECK_OK(scheme->Read(op.index).status());
    }
  }
  return scheme->server().transcript().BlocksPerQuery();
}

void RunWorkload(const char* name, double zipf_s) {
  PrintBanner(std::cout, std::string("E5: blocks/query vs n (") + name +
                             " workload, 30% writes)");
  TablePrinter table({"n", "plaintext", "dp_ram", "path_oram",
                      "path_oram_recursive(roundtrips)", "linear_oram",
                      "oram/dp_ram"});
  for (uint64_t log_n = 8; log_n <= 16; log_n += 2) {
    uint64_t n = uint64_t{1} << log_n;
    Rng rng(log_n);
    RamSequence ops =
        zipf_s > 0.0 ? ZipfRamSequence(&rng, n, 300, 0.3, zipf_s)
                     : UniformRamSequence(&rng, n, 300, 0.3);

    DpRam dp_ram(MakeDatabase(n), DpRamOptions{.seed = 3});
    double dp_blocks = MeasureBlocksPerQuery(&dp_ram, ops);

    PathOram oram(MakeDatabase(n), PathOramOptions{.block_size = kRecordSize});
    double oram_blocks = MeasureBlocksPerQuery(&oram, ops);

    PathOramOptions rec_options;
    rec_options.block_size = kRecordSize;
    rec_options.recursive_position_map = true;
    rec_options.recursion_cutoff = 64;
    PathOram oram_rec(MakeDatabase(n), rec_options);
    // Count recursion bandwidth via the per-access formula (children have
    // their own servers).
    double rec_blocks = static_cast<double>(oram_rec.BlocksPerAccess());
    std::string rec_cell = FormatDouble(rec_blocks, 0) + " (" +
                           std::to_string(oram_rec.RoundtripsPerAccess()) +
                           " rt)";

    // Linear ORAM cost is deterministic; avoid running the big scans.
    LinearOram linear(MakeDatabase(std::min<uint64_t>(n, 1 << 10)));
    double linear_blocks = static_cast<double>(2 * n);
    (void)linear;

    table.AddRow()
        .AddUint(n)
        .AddDouble(1.0, 0)
        .AddDouble(dp_blocks, 1)
        .AddDouble(oram_blocks, 0)
        .AddCell(rec_cell)
        .AddDouble(linear_blocks, 0)
        .AddDouble(oram_blocks / dp_blocks, 1);
  }
  table.Print(std::cout);
}

void LatencyProjection() {
  PrintBanner(std::cout,
              "E5b: projected query latency (roundtrips x RTT + blocks x "
              "transfer), n=2^16");
  constexpr uint64_t kN = 1 << 16;
  DpRam dp_ram(MakeDatabase(kN), DpRamOptions{});
  PathOram oram(MakeDatabase(kN), PathOramOptions{.block_size = kRecordSize});
  PathOramOptions rec_options;
  rec_options.block_size = kRecordSize;
  rec_options.recursive_position_map = true;
  rec_options.recursion_cutoff = 64;
  PathOram oram_rec(MakeDatabase(kN), rec_options);

  struct Row {
    const char* name;
    double blocks;
    double roundtrips;
  };
  const Row rows[] = {
      {"plaintext", 1, 1},
      {"dp_ram", dp_ram.BlocksPerQueryExpected(), 1},
      {"path_oram", static_cast<double>(oram.BlocksPerAccess()),
       static_cast<double>(oram.RoundtripsPerAccess())},
      {"path_oram_recursive",
       static_cast<double>(oram_rec.BlocksPerAccess()),
       static_cast<double>(oram_rec.RoundtripsPerAccess())},
  };
  TablePrinter table({"scheme", "blocks", "roundtrips", "LAN_ms", "WAN_ms",
                      "WAN_vs_dp_ram"});
  double dp_wan = kWanModel.QueryLatencyMs(dp_ram.BlocksPerQueryExpected(), 1);
  for (const Row& row : rows) {
    table.AddRow()
        .AddCell(row.name)
        .AddDouble(row.blocks, 0)
        .AddDouble(row.roundtrips, 0)
        .AddDouble(kLanModel.QueryLatencyMs(row.blocks, row.roundtrips), 3)
        .AddDouble(kWanModel.QueryLatencyMs(row.blocks, row.roundtrips), 1)
        .AddDouble(kWanModel.QueryLatencyMs(row.blocks, row.roundtrips) /
                       dp_wan,
                   1);
  }
  table.Print(std::cout);
  std::cout << "On WAN links the recursive position map's extra roundtrips\n"
               "dominate (the Section 1 critique of [50]); DP-RAM's single\n"
               "roundtrip and 3 blocks leave it ~1% above plaintext latency\n"
               "- the 'no negative impact on response times' the paper's\n"
               "introduction asks for.\n";
}

void Run() {
  RunWorkload("uniform", 0.0);
  RunWorkload("zipf(0.99)", 0.99);
  LatencyProjection();
  std::cout
      << "\nPaper claim: DP-RAM needs O(1) blocks and 1 roundtrip per query\n"
         "(Thm 6.1), vs Theta(log n) for Path ORAM, with the gap growing in\n"
         "n; the [50]-style recursive construction additionally pays\n"
         "Theta(log n) roundtrips. Measured: DP-RAM is flat at 3.0\n"
         "blocks/query at every n and workload; the oram/dp_ram ratio grows\n"
         "from ~24x (n=2^8) to ~45x (n=2^16).\n";
}

}  // namespace
}  // namespace dpstore

int main() {
  dpstore::bench::BenchJson json("dpram_overhead");
  dpstore::Run();
  json.Emit();
  return 0;
}
