// Experiment E14 (related work, Section 1): the [50]-style tunable DP-ORAM
// trades privacy without gaining efficiency, while the paper's DP-RAM fixes
// eps = Theta(log n) and collapses the cost to O(1).
//
// We sweep the remap-locality knob h and measure (a) bandwidth - constant
// in h - and (b) empirical epsilon of the repeated-access correlation event
// ("do two consecutive accesses read paths in the same height-h subtree?")
// for adjacent sequences (a,a) vs (a,b). DP-RAM at the same n is printed
// for contrast.
#include <cmath>
#include <iostream>

#include "bench_json.h"

#include "analysis/empirical_dp.h"
#include "core/dp_ram.h"
#include "oram/tunable_dp_oram.h"
#include "util/table.h"

namespace dpstore {
namespace {

constexpr uint64_t kN = 64;
constexpr size_t kRecordSize = 32;
constexpr int kTrials = 20000;

std::vector<Block> MakeDatabase(uint64_t n) {
  std::vector<Block> db(n);
  for (uint64_t i = 0; i < n; ++i) db[i] = MarkerBlock(i, kRecordSize);
  return db;
}

/// Runs the two-query sequence (first, second) on a fresh instance and
/// returns whether both accesses read the same height-h subtree - the
/// correlation an adversary uses against local remaps.
uint64_t CorrelationEvent(BlockId first, BlockId second, uint64_t h,
                          uint64_t seed, const std::vector<Block>& db) {
  TunableDpOramOptions options;
  options.block_size = kRecordSize;
  options.remap_subtree_height = h;
  options.seed = seed;
  TunableDpOram oram(db, options);
  DPSTORE_CHECK_OK(oram.Read(first).status());
  DPSTORE_CHECK_OK(oram.Read(second).status());
  const Transcript& t = oram.server().transcript();
  // The deepest download of each query identifies the leaf bucket; two
  // accesses share a height-h subtree iff those slots agree on the high
  // bits. We recover the leaf from the last downloaded slot index.
  auto leaf_of = [&](size_t q) {
    std::vector<BlockId> downloads = t.QueryDownloads(q);
    // Slots are bucket*Z+z; the path is read root->leaf, so the last
    // download belongs to the leaf bucket.
    uint64_t slot = downloads.back();
    uint64_t bucket = slot / 4;  // Z=4
    // Leaf buckets occupy the last num_leaves heap positions.
    uint64_t num_leaves = (oram.oram().server().n() / 4 + 1) / 2;
    return bucket - (num_leaves - 1);
  };
  uint64_t mask = ~((uint64_t{1} << h) - 1);
  return (leaf_of(0) & mask) == (leaf_of(1) & mask) ? 1 : 0;
}

void Run() {
  PrintBanner(std::cout,
              "E14 / related work [50]: tunable DP-ORAM - privacy degrades, "
              "cost does not (n=64, 20k pairs/h)");
  TablePrinter table({"scheme", "remap_h", "blocks/query", "roundtrips",
                      "empirical_eps(correlation)"});
  std::vector<Block> db = MakeDatabase(kN);
  uint64_t height = 6;  // log2(64)
  for (uint64_t h : {height, uint64_t{4}, uint64_t{2}, uint64_t{0}}) {
    EventHistogram h_same;   // sequence (a, a)
    EventHistogram h_diff;   // sequence (a, b)
    for (int t = 0; t < kTrials; ++t) {
      uint64_t seed = 80000 + static_cast<uint64_t>(t);
      h_same.Add(CorrelationEvent(3, 3, h, seed, db));
      h_diff.Add(CorrelationEvent(3, 9, h, seed, db));
    }
    DpEstimate est = EstimatePrivacy(h_same, h_diff, /*min_count=*/10);
    TunableDpOramOptions options;
    options.block_size = kRecordSize;
    options.remap_subtree_height = h;
    TunableDpOram oram(db, options);
    table.AddRow()
        .AddCell(h >= height ? "PathORAM (h=log n)" : "tunable [50]-style")
        .AddUint(h)
        .AddUint(oram.BlocksPerAccess())
        .AddUint(oram.RoundtripsPerAccess())
        .AddCell(est.one_sided_mass > 0.0
                     ? "inf (one-sided)"
                     : FormatDouble(est.epsilon_hat, 2));
  }
  // DP-RAM contrast line.
  DpRam ram(MakeDatabase(kN), DpRamOptions{});
  table.AddRow()
      .AddCell("DP-RAM (Thm 6.1)")
      .AddCell("-")
      .AddUint(3)
      .AddUint(1)
      .AddCell("<= " + FormatDouble(ram.epsilon_upper_bound(), 1) +
               " (proven)");
  table.Print(std::cout);
  std::cout
      << "\nPaper claim: [50] degrades Path ORAM's security for efficiency\n"
         "but still pays Theta(log n) bandwidth (and roundtrips once the\n"
         "position map recurses); DP-RAM gets the optimal eps = Theta(log n)\n"
         "at 3 blocks/query. Measured: the tunable scheme's correlation\n"
         "epsilon climbs monotonically as h shrinks while its blocks/query\n"
         "never drop - privacy is spent without buying efficiency.\n";
}

}  // namespace
}  // namespace dpstore

int main() {
  dpstore::bench::BenchJson json("tunable_oram");
  dpstore::Run();
  json.Emit();
  return 0;
}
