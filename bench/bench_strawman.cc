// Experiment E4 (Section 4): the tempting "query real w.p. 1, every other
// block w.p. 1/n" scheme is insecure - it is (eps, delta)-DP only for
// delta >= (n-1)/n. We measure the empirical delta floor at several n and
// compare against the paper's closed form, alongside the honest DP-IR at
// the same expected bandwidth for contrast.
#include <cmath>
#include <iostream>

#include "bench_json.h"

#include "analysis/empirical_dp.h"
#include "core/dp_ir.h"
#include "core/dp_params.h"
#include "core/strawman_ir.h"
#include "storage/server.h"
#include "util/table.h"

namespace dpstore {
namespace {

void Run() {
  PrintBanner(std::cout,
              "E4 / Section 4: the strawman's delta -> 1 (100k trial pairs/n)");
  // "one_sided_mass" = probability mass on events that are *impossible*
  // under the adjacent query - the transcript-ratio is infinite there, so
  // it lower-bounds delta at every finite epsilon. The strawman's mass is
  // ~(n-1)/n; the honest Algorithm 1 at the same bandwidth has none (it is
  // pure eps-DP).
  TablePrinter table({"n", "blocks/query", "delta_floor_formula",
                      "strawman_delta@eps=8", "strawman_one_sided",
                      "honest_dpir_one_sided"});
  for (uint64_t log_n = 6; log_n <= 12; log_n += 2) {
    uint64_t n = uint64_t{1} << log_n;
    StorageServer server(n, 32);
    StrawmanIr strawman(&server, /*seed=*/7);
    const BlockId qi = 1;
    const BlockId qj = n - 2;
    EventHistogram hi;
    EventHistogram hj;
    constexpr int kTrials = 100000;
    uint64_t blocks = 0;
    for (int t = 0; t < kTrials; ++t) {
      server.ResetTranscript();
      DPSTORE_CHECK_OK(strawman.Query(qi).status());
      blocks += server.transcript().download_count();
      hi.Add(DpIrMembershipEvent(server.transcript().QueryDownloads(0), qi,
                                 qj));
      server.ResetTranscript();
      DPSTORE_CHECK_OK(strawman.Query(qj).status());
      hj.Add(DpIrMembershipEvent(server.transcript().QueryDownloads(0), qi,
                                 qj));
    }
    double empirical_delta = EstimateDeltaAtEpsilon(hi, hj, 8.0);

    // Honest DP-IR tuned to the same expected bandwidth (~2 blocks).
    DpIrOptions options;
    options.alpha = 0.25;
    options.epsilon = DpIrAchievedEpsilon(n, 2, options.alpha);
    DpIr honest(&server, options);
    EventHistogram gi;
    EventHistogram gj;
    for (int t = 0; t < kTrials; ++t) {
      server.ResetTranscript();
      DPSTORE_CHECK_OK(honest.Query(qi).status());
      gi.Add(DpIrMembershipEvent(server.transcript().QueryDownloads(0), qi,
                                 qj));
      server.ResetTranscript();
      DPSTORE_CHECK_OK(honest.Query(qj).status());
      gj.Add(DpIrMembershipEvent(server.transcript().QueryDownloads(0), qi,
                                 qj));
    }
    DpEstimate strawman_est = EstimatePrivacy(hi, hj, /*min_count=*/10);
    DpEstimate honest_est = EstimatePrivacy(gi, gj, /*min_count=*/10);

    table.AddRow()
        .AddUint(n)
        .AddDouble(static_cast<double>(blocks) / kTrials, 2)
        .AddDouble(StrawmanDeltaFloor(n), 4)
        .AddDouble(empirical_delta, 4)
        .AddDouble(strawman_est.one_sided_mass, 4)
        .AddScientific(honest_est.one_sided_mass);
  }
  table.Print(std::cout);
  std::cout
      << "\nPaper claim: the strawman needs delta >= (n-1)/n - no privacy -\n"
         "because Pr[B_i not in T | query i] = 0 identifies non-queried\n"
         "blocks. Measured: the empirical delta tracks (n-1)/n and grows\n"
         "toward 1 with n, while the honest Algorithm 1 at the same ~2\n"
         "blocks/query needs delta ~ 0 at its achieved epsilon.\n";
}

}  // namespace
}  // namespace dpstore

int main() {
  dpstore::bench::BenchJson json("strawman");
  dpstore::Run();
  json.Emit();
  return 0;
}
