// Query-bandwidth and server-scan study for the two-server DPF PIR.
//
// Three groups of BENCH cells:
//
//   dpf_pir_query_n<log_n>  — end-to-end queries over in-memory replicas
//     at n = 2^14 .. 2^22: measured query bytes per access (two serialized
//     keys, from the replicas' own transport ledgers) against xor_pir's
//     2n selection bits, plus modeled LAN/WAN latency per access. This is
//     the paper-facing axis: upload shrinks from Theta(n) bits to
//     O(lambda log n) bytes while the answer stays one block per replica.
//
//   dpf_pir_scan            — the server-side kernel: full-domain key
//     expansion time and SelectXorScan GiB/s per kernel variant over a
//     64 MiB arena (the Theta(n) work the PIR lower bound keeps, moved
//     into the vectorized scan).
//
//   dpf_pir_socket          — measured ms/op with the key crossing the
//     real wire codec into the in-process socketpair server.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"

#include "analysis/cost_model.h"
#include "core/scheme_registry.h"
#include "crypto/dpf.h"
#include "pir/dpf_pir.h"
#include "storage/kernels.h"
#include "storage/server.h"
#include "util/random.h"
#include "util/table.h"

namespace dpstore {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::unique_ptr<StorageServer> MakeReplica(uint64_t n, size_t block_size) {
  auto server = std::make_unique<StorageServer>(n, block_size);
  std::vector<Block> db(n);
  for (uint64_t i = 0; i < n; ++i) db[i] = MarkerBlock(i, block_size);
  DPSTORE_CHECK_OK(server->SetArray(std::move(db)));
  return server;
}

void QueryBandwidthSweep() {
  PrintBanner(std::cout,
              "dpf_pir query bandwidth vs xor_pir (16 B blocks, measured "
              "from replica transcripts)");
  TablePrinter table({"n", "depth", "dpf_bytes/access", "xor_bytes/access",
                      "compression", "lan_ms", "wan_ms", "measured_ms/op"});
  constexpr size_t kBlockSize = 16;
  for (uint64_t log_n = 14; log_n <= 22; log_n += 2) {
    const uint64_t n = uint64_t{1} << log_n;
    // One query is seconds of ChaCha at the top size; scale the repeat
    // count down as the eval cost scales up.
    const int queries = log_n <= 16 ? 4 : (log_n <= 20 ? 2 : 1);
    auto s0 = MakeReplica(n, kBlockSize);
    auto s1 = MakeReplica(n, kBlockSize);
    TwoServerDpfPir pir(s0.get(), s1.get());
    Rng rng(log_n);
    const auto start = Clock::now();
    for (int q = 0; q < queries; ++q) {
      const BlockId index = rng.Uniform(n);
      auto got = pir.Query(index);
      DPSTORE_CHECK_OK(got.status());
      DPSTORE_CHECK(IsMarkerBlock(*got, index));
    }
    const double measured_ms = ElapsedMs(start) / queries;
    const TransportStats stats = [&] {
      TransportStats total = s0->Stats();
      total += s1->Stats();
      return total;
    }();
    // Upload: two serialized keys (the ledger's aux axis). Download: one
    // block per replica.
    const double dpf_bytes =
        static_cast<double>(stats.aux_bytes) / queries +
        static_cast<double>(stats.bytes_moved) / queries;
    const double xor_bytes =
        2.0 * (static_cast<double>(n) / 8.0 + kBlockSize);
    const double blocks_per_query =
        static_cast<double>(stats.blocks_moved) / queries;
    const double rtts_per_query =
        static_cast<double>(stats.roundtrips) / queries / 2.0;  // parallel
    const double lan_ms =
        kLanModel.QueryLatencyMs(blocks_per_query, rtts_per_query);
    const double wan_ms =
        kWanModel.QueryLatencyMs(blocks_per_query, rtts_per_query);

    table.AddRow()
        .AddCell("2^" + std::to_string(log_n))
        .AddUint(pir.domain_depth())
        .AddDouble(dpf_bytes, 0)
        .AddDouble(xor_bytes, 0)
        .AddDouble(xor_bytes / dpf_bytes, 1)
        .AddDouble(lan_ms, 3)
        .AddDouble(wan_ms, 2)
        .AddDouble(measured_ms, 2);

    bench::BenchJson cell("dpf_pir_query_n" + std::to_string(log_n));
    cell.Metric("n", n);
    cell.Metric("depth", static_cast<uint64_t>(pir.domain_depth()));
    cell.Metric("block_size", kBlockSize);
    cell.Metric("query_bytes_per_access", dpf_bytes);
    cell.Metric("query_bytes_per_server", pir.QueryBytesPerServer());
    cell.Metric("xor_pir_query_bytes", xor_bytes);
    cell.Metric("compression_x", xor_bytes / dpf_bytes);
    cell.Metric("blocks_per_op", blocks_per_query);
    cell.Metric("roundtrips_per_op", rtts_per_query);
    cell.Metric("lan_ms_model", lan_ms);
    cell.Metric("wan_ms_model", wan_ms);
    cell.Metric("wall_ms_per_op", measured_ms);
    cell.Emit();
  }
  table.Print(std::cout);
}

void ServerScanStudy() {
  PrintBanner(std::cout,
              "Server-side eval: key expansion + SelectXorScan per kernel "
              "variant (n=2^20 x 64 B = 64 MiB arena)");
  constexpr uint8_t kDepth = 20;
  constexpr uint64_t kCount = uint64_t{1} << kDepth;
  constexpr size_t kBlockSize = 64;
  Rng rng(7);
  std::vector<uint8_t> arena(kCount * kBlockSize);
  for (size_t i = 0; i < arena.size(); ++i) {
    arena[i] = static_cast<uint8_t>(rng.Uniform(256));
  }
  auto keys = crypto::DpfGen(rng.Uniform(kCount), kDepth);
  DPSTORE_CHECK_OK(keys.status());

  const auto expand_start = Clock::now();
  const std::vector<uint64_t> bits = crypto::DpfEvalFull(keys->key0);
  const double expand_ms = ElapsedMs(expand_start);

  bench::BenchJson cell("dpf_pir_scan");
  cell.Metric("n", kCount);
  cell.Metric("block_size", kBlockSize);
  cell.Metric("eval_full_ms", expand_ms);
  TablePrinter table({"variant", "scan GiB/s"});
  for (kernels::Variant v :
       {kernels::Variant::kScalar, kernels::Variant::kSse2,
        kernels::Variant::kAvx2}) {
    if (!kernels::VariantSupported(v)) continue;
    std::vector<uint8_t> answer(kBlockSize, 0);
    // Warm once, then best of 3 passes.
    kernels::SelectXorScanVariant(v, answer.data(), arena.data(), kCount,
                                  kBlockSize, bits.data(), 0);
    double best_ms = 0.0;
    for (int trial = 0; trial < 3; ++trial) {
      const auto start = Clock::now();
      kernels::SelectXorScanVariant(v, answer.data(), arena.data(), kCount,
                                    kBlockSize, bits.data(), 0);
      const double ms = ElapsedMs(start);
      if (trial == 0 || ms < best_ms) best_ms = ms;
    }
    const double gibs = static_cast<double>(arena.size()) /
                        (best_ms / 1000.0) /
                        static_cast<double>(size_t{1} << 30);
    cell.Metric(std::string(kernels::VariantName(v)) + "_gib_s", gibs);
    table.AddRow().AddCell(kernels::VariantName(v)).AddDouble(gibs, 2);
  }
  cell.Metric("active_variant",
              std::string(kernels::VariantName(kernels::ActiveVariant())));
  table.Print(std::cout);
  std::cout << "Key expansion (EvalFull, depth " << unsigned{kDepth}
            << "): " << expand_ms << " ms\n";
  cell.Emit();
}

void SocketStudy() {
  PrintBanner(std::cout,
              "dpf_pir over the socket transport (in-process socketpair "
              "server, n=2^14 x 64 B)");
  SchemeConfig config;
  config.n = uint64_t{1} << 14;
  config.value_size = 64;
  config.seed = 9;
  config.backend = "socket";
  auto scheme = SchemeRegistry::Instance().MakeRam("dpf_pir", config);
  DPSTORE_CHECK_OK(scheme.status());
  constexpr int kQueries = 64;
  Rng rng(17);
  const auto start = Clock::now();
  for (int q = 0; q < kQueries; ++q) {
    const BlockId index = rng.Uniform(config.n);
    auto got = (*scheme)->QueryRead(index);
    DPSTORE_CHECK_OK(got.status());
    DPSTORE_CHECK(IsMarkerBlock(**got, index));
  }
  const double wall_ms = ElapsedMs(start) / kQueries;
  const TransportStats stats = (*scheme)->TransportTotals();
  bench::BenchJson cell("dpf_pir_socket");
  cell.Metric("n", config.n);
  cell.Metric("queries", kQueries);
  cell.Metric("wall_ms_per_op", wall_ms);
  cell.Metric("socket_ms_per_op", stats.measured_wall_ms / kQueries);
  cell.Metric("aux_bytes_per_op",
              static_cast<double>(stats.aux_bytes) / kQueries);
  std::cout << "measured " << wall_ms << " ms/op ("
            << stats.measured_wall_ms / kQueries
            << " ms/op on the socket itself)\n";
  cell.Emit();
}

void Run() {
  QueryBandwidthSweep();
  ServerScanStudy();
  SocketStudy();
  std::cout
      << "\nPaper framing: two-server PIR keeps Theta(n) server work (the\n"
         "lower-bound axis the paper's Section 1 contrasts with) but the\n"
         "DPF collapses per-query upload from 2n selection bits to two\n"
         "O(lambda log n) keys — sublinear communication with answers\n"
         "bit-identical to xor_pir on every storage topology.\n";
}

}  // namespace
}  // namespace dpstore

int main() {
  dpstore::bench::BenchJson json("dpf_pir");
  dpstore::Run();
  json.Emit();
  return 0;
}
