#!/usr/bin/env python3
"""Compare two combined bench artifacts (BENCH_all.json) cell by cell.

Usage:
    bench/compare_bench.py BASELINE.json CURRENT.json [--metric wall_ms_per_op]
        [--threshold 0.05] [--filter substring]

Each BENCH_all.json is the {"benches":[...]} object run_all writes after a
sweep (bench/baseline/BENCH_all.json holds the committed pre-optimization
reference). Cells are matched by their "bench" name; for every shared cell
the tool reports the delta of the chosen metric (default: each cell's most
informative wall-clock metric) plus any transport-axis drift, which must be
zero: the perf work moves wall-clock, never blocks/bytes/roundtrips.

Cells present on only one side are reported by name (added = current-only,
removed = baseline-only): a renamed or dropped cell must be a deliberate
baseline refresh, never silent drift.

Exit status: 0 when the (filtered) cell sets match, 1 on malformed input,
2 when cells were added/removed or a transport axis drifted — with the
summary printed either way. The tool never fails on a wall-clock
regression by itself (containers are noisy); CI greps its output instead.
"""

import argparse
import json
import sys

# Per-cell wall-clock metric preference: first present key wins.
WALL_KEYS = ("wall_ms_per_op", "ms_per_exchange", "host_wall_ms", "wall_ms")
# Transport axes that must not drift across a pure perf refactor.
INVARIANT_KEYS = (
    "blocks_per_op",
    "bytes_per_op",
    "roundtrips_per_op",
    "blocks",
    "roundtrips",
    "reply_hash",
)


def load_cells(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"compare_bench: cannot read {path}: {err}")
    benches = data.get("benches")
    if not isinstance(benches, list):
        sys.exit(f"compare_bench: {path} is not a BENCH_all.json artifact")
    cells = {}
    for cell in benches:
        name = cell.get("bench")
        if isinstance(name, str):
            cells[name] = cell
    return cells


def wall_metric(cell, forced=None):
    keys = (forced,) if forced else WALL_KEYS
    for key in keys:
        value = cell.get(key)
        if isinstance(value, (int, float)):
            return key, float(value)
    return None, None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--metric", default=None,
                        help="compare only this metric key")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="relative change below this is reported as '~'")
    parser.add_argument("--filter", default="",
                        help="only cells whose name contains this substring")
    args = parser.parse_args()

    base = load_cells(args.baseline)
    curr = load_cells(args.current)
    shared = sorted(name for name in set(base) & set(curr)
                    if args.filter in name)
    removed = sorted(name for name in set(base) - set(curr)
                     if args.filter in name)
    added = sorted(name for name in set(curr) - set(base)
                   if args.filter in name)
    if not shared:
        sys.exit("compare_bench: no shared cells to compare")

    improved = regressed = flat = 0
    drifted = []
    print(f"{'cell':<58} {'metric':<18} {'base':>12} {'curr':>12} {'delta':>9}")
    for name in shared:
        key, base_value = wall_metric(base[name], args.metric)
        _, curr_value = wall_metric(curr[name], args.metric)
        if key is None or curr_value is None:
            continue
        if base_value > 0:
            ratio = (curr_value - base_value) / base_value
        else:
            ratio = 0.0 if curr_value == 0 else float("inf")
        if ratio <= -args.threshold:
            marker, improved = "-", improved + 1
        elif ratio >= args.threshold:
            marker, regressed = "+", regressed + 1
        else:
            marker, flat = "~", flat + 1
        print(f"{name:<58} {key:<18} {base_value:>12.4f} {curr_value:>12.4f} "
              f"{marker}{abs(ratio) * 100:>7.1f}%")
        for inv in INVARIANT_KEYS:
            if inv in base[name] and base[name].get(inv) != curr[name].get(inv):
                drifted.append((name, inv, base[name][inv], curr[name][inv]))

    print(f"\ncompare_bench: {improved} improved, {regressed} regressed, "
          f"{flat} within {args.threshold * 100:.0f}% "
          f"(cells: {len(shared)} shared, {len(removed)} removed, "
          f"{len(added)} added)")
    if removed:
        print("REMOVED cells (in baseline, not in current):")
        for name in removed:
            print(f"  - {name}")
    if added:
        print("ADDED cells (in current, not in baseline):")
        for name in added:
            print(f"  + {name}")
    if drifted:
        print("TRANSPORT DRIFT (must stay invariant across perf work):")
        for name, key, old, new in drifted:
            print(f"  {name}: {key} {old} -> {new}")
    if removed or added or drifted:
        print("compare_bench: cell set or transport changed — refresh "
              "bench/baseline/BENCH_all.json if this is intentional")
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
