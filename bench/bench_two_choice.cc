// Experiment E9 (Theorem 7.2, Theorem A.1): two-choice hashing, classic and
// oblivious-tree variants. (a) classic max load is O(log log n) vs
// one-choice O(log n / log log n); (b) the shared-storage bucket-tree
// mapping stores n keys in O(n) node storage with super-root occupancy far
// below Phi(n); (c) level fill counts H_i stay under the beta_i recursion
// from Lemma 7.3.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>

#include "bench_json.h"

#include "core/dp_kvs.h"
#include "hashing/bucket_tree.h"
#include "hashing/two_choice.h"
#include "util/random.h"
#include "util/table.h"

namespace dpstore {
namespace {

void ClassicMaxLoad() {
  PrintBanner(std::cout,
              "E9a / Theorem A.1: classic two-choice vs one-choice max load "
              "(n keys into n bins)");
  TablePrinter table({"n", "one_choice_max", "two_choice_max",
                      "log2(n)/log2log2(n)", "log2log2(n)"});
  for (uint64_t log_n = 10; log_n <= 20; log_n += 2) {
    uint64_t n = uint64_t{1} << log_n;
    TwoChoiceTable table2(n, /*seed=*/log_n);
    for (uint64_t k = 0; k < n; ++k) table2.Insert(k);
    auto one = OneChoiceLoads(n, n, /*seed=*/log_n);
    double lg = static_cast<double>(log_n);
    table.AddRow()
        .AddCell("2^" + std::to_string(log_n))
        .AddUint(*std::max_element(one.begin(), one.end()))
        .AddUint(table2.MaxLoad())
        .AddDouble(lg / std::log2(lg), 2)
        .AddDouble(std::log2(lg), 2);
  }
  table.Print(std::cout);
}

/// Client-side simulation of the oblivious mapping's storing algorithm S
/// (no encryption, no DP-RAM - pure allocation behaviour at scale).
struct MappingSimulation {
  uint64_t super_root = 0;
  uint64_t failures = 0;
  std::map<uint64_t, uint64_t> filled_per_height;  // fully filled nodes
  uint64_t total_nodes = 0;
};

MappingSimulation SimulateMapping(uint64_t n, uint64_t node_slots,
                                  uint64_t seed) {
  BucketTreeGeometry g = BucketTreeGeometry::ForCapacity(n);
  std::vector<uint8_t> load(g.total_nodes(), 0);
  Rng rng(seed);
  MappingSimulation sim;
  sim.total_nodes = g.total_nodes();
  for (uint64_t key = 0; key < n; ++key) {
    uint64_t l1 = rng.Uniform(g.num_leaves());
    uint64_t l2 = rng.Uniform(g.num_leaves());
    auto p1 = g.Path(l1);
    auto p2 = g.Path(l2);
    bool placed = false;
    for (size_t h = 0; h < p1.size() && !placed; ++h) {
      if (load[p1[h]] < node_slots) {
        ++load[p1[h]];
        placed = true;
      } else if (l1 != l2 && load[p2[h]] < node_slots) {
        ++load[p2[h]];
        placed = true;
      }
    }
    if (!placed) ++sim.super_root;
  }
  BucketTreeGeometry g2 = BucketTreeGeometry::ForCapacity(n);
  for (NodeId node = 0; node < g2.total_nodes(); ++node) {
    if (load[node] == node_slots) {
      ++sim.filled_per_height[g2.NodeHeight(node)];
    }
  }
  return sim;
}

void ObliviousMapping() {
  PrintBanner(std::cout,
              "E9b / Theorem 7.2: oblivious tree mapping - storage and "
              "super-root load (t=4 slots/node)");
  TablePrinter table({"n_keys", "server_nodes", "storage_blowup",
                      "super_root_keys", "Phi(n)=log2(n)^1.5",
                      "overflow_failures"});
  for (uint64_t log_n = 10; log_n <= 20; log_n += 2) {
    uint64_t n = uint64_t{1} << log_n;
    MappingSimulation sim = SimulateMapping(n, 4, /*seed=*/log_n * 7);
    double phi = std::pow(static_cast<double>(log_n), 1.5);
    table.AddRow()
        .AddCell("2^" + std::to_string(log_n))
        .AddUint(sim.total_nodes)
        .AddDouble(static_cast<double>(sim.total_nodes) * 4 /
                       static_cast<double>(n),
                   2)
        .AddUint(sim.super_root)
        .AddDouble(phi, 1)
        .AddUint(sim.failures)
        ;
  }
  table.Print(std::cout);
}

void LevelFillRecursion() {
  PrintBanner(std::cout,
              "E9c / Lemmas 7.3-7.4: filled nodes per height H_i vs the "
              "beta_i recursion (n=2^18, t=4)");
  constexpr uint64_t kN = 1 << 18;
  MappingSimulation sim = SimulateMapping(kN, 4, /*seed=*/99);
  // The structural claim (Lemma 7.3/7.4): H_{i+1} <= beta_{i+1} where
  // beta_{i+1} = e/n * beta_i^2 * 2^{2(i+1)} - a doubly-exponential
  // collapse. The paper's base constant beta_0 = n/(e*3^4) is asymptotic;
  // we anchor the recursion at the *measured* H_0 (constant-factor slack
  // only) and verify the collapse from there.
  uint64_t h0 = sim.filled_per_height.contains(0)
                    ? sim.filled_per_height.at(0)
                    : 0;
  double beta = static_cast<double>(h0);
  TablePrinter table({"height_i", "filled_nodes_H_i",
                      "beta_i(anchored@H_0)", "H_i<=beta_i"});
  BucketTreeGeometry g = BucketTreeGeometry::ForCapacity(kN);
  for (uint64_t h = 0; h < g.path_length(); ++h) {
    uint64_t filled = sim.filled_per_height.contains(h)
                          ? sim.filled_per_height.at(h)
                          : 0;
    table.AddRow()
        .AddUint(h)
        .AddUint(filled)
        .AddDouble(beta, 1)
        .AddCell(static_cast<double>(filled) <= beta ? "yes" : "NO");
    beta = std::exp(1.0) / static_cast<double>(kN) * beta * beta *
           std::pow(2.0, 2.0 * (static_cast<double>(h) + 1.0));
  }
  table.Print(std::cout);
}

void Run() {
  ClassicMaxLoad();
  ObliviousMapping();
  LevelFillRecursion();
  std::cout
      << "\nPaper claim: two-choice keeps max load O(log log n) (A.1); the\n"
         "tree arrangement shares storage so n keys fit in O(n) node slots\n"
         "with the super root holding < Phi(n) = omega(log n) keys except\n"
         "with negligible probability (Thm 7.2), via the doubly-exponential\n"
         "beta_i collapse (Lemma 7.3). Measured: all three effects hold -\n"
         "the super root stays an order of magnitude under Phi(n) and the\n"
         "filled-node counts drop doubly-exponentially with height.\n";
}

}  // namespace
}  // namespace dpstore

int main() {
  dpstore::bench::BenchJson json("two_choice");
  dpstore::Run();
  json.Emit();
  return 0;
}
