// Experiment E11 (Theorem C.1): multi-server DP-IR. Sweeps the server count
// D and the corruption fraction t, comparing the construction's total work
// D*K against the lower bound ((1-alpha) t - delta)(n-1)/e^eps, plus the
// two-server XOR PIR as the fully oblivious multi-server reference point.
#include <cmath>
#include <iostream>
#include <memory>

#include "bench_json.h"

#include "core/dp_params.h"
#include "analysis/empirical_dp.h"
#include "core/multi_server_dp_ir.h"
#include "pir/xor_pir.h"
#include "storage/server.h"
#include "util/table.h"

namespace dpstore {
namespace {

constexpr uint64_t kN = 1 << 14;
constexpr size_t kBlockSize = 32;

std::vector<Block> MakeDatabase(uint64_t n) {
  std::vector<Block> db(n);
  for (uint64_t i = 0; i < n; ++i) db[i] = MarkerBlock(i, kBlockSize);
  return db;
}

void ConstructionSweep() {
  PrintBanner(std::cout,
              "E11a / Theorem C.1: multi-server DP-IR work vs D "
              "(n=2^14, alpha=0.1, eps=4)");
  TablePrinter table({"D", "K_per_server", "total_work", "lb(t=0.5)",
                      "lb(t=1/D)", "per_server_eps"});
  for (uint64_t d : {uint64_t{2}, uint64_t{3}, uint64_t{4}, uint64_t{8}}) {
    std::vector<std::unique_ptr<StorageServer>> replicas;
    std::vector<StorageBackend*> pointers;
    for (uint64_t s = 0; s < d; ++s) {
      replicas.push_back(std::make_unique<StorageServer>(kN, kBlockSize));
      DPSTORE_CHECK_OK(replicas.back()->SetArray(MakeDatabase(kN)));
      pointers.push_back(replicas.back().get());
    }
    MultiServerDpIrOptions options;
    options.num_servers = d;
    options.epsilon = 4.0;
    options.alpha = 0.1;
    MultiServerDpIr ir(pointers, options);
    // Measure real downloads over a few queries.
    constexpr int kQueries = 50;
    for (int q = 0; q < kQueries; ++q) {
      DPSTORE_CHECK_OK(ir.Query(static_cast<BlockId>(q)).status());
    }
    uint64_t total = 0;
    for (StorageBackend* s : pointers) total += s->download_count();
    table.AddRow()
        .AddUint(d)
        .AddUint(ir.k())
        .AddDouble(static_cast<double>(total) / kQueries, 1)
        .AddDouble(MultiServerDpIrLowerBound(kN, 4.0, 0.1, 0.0, 0.5), 1)
        .AddDouble(MultiServerDpIrLowerBound(kN, 4.0, 0.1, 0.0,
                                             1.0 / static_cast<double>(d)),
                   1)
        .AddDouble(ir.achieved_epsilon(), 2);
  }
  table.Print(std::cout);
}

void EpsilonSweep() {
  PrintBanner(std::cout,
              "E11b: total work vs epsilon at D=2 against the t=0.5 lower "
              "bound and XOR PIR");
  TablePrinter table({"epsilon", "dp_total_work", "lower_bound(t=0.5)",
                      "xor_pir_work"});
  XorPirServer x0(MakeDatabase(kN));
  XorPirServer x1(MakeDatabase(kN));
  TwoServerXorPir xor_pir(&x0, &x1);
  DPSTORE_CHECK_OK(xor_pir.Query(0).status());
  double xor_work = static_cast<double>(x0.ops_count() + x1.ops_count());
  double log_n = std::log(static_cast<double>(kN));
  for (double eps : {1.0, 2.0, 4.0, 6.0, 8.0, log_n}) {
    std::vector<std::unique_ptr<StorageServer>> replicas;
    std::vector<StorageBackend*> pointers;
    for (uint64_t s = 0; s < 2; ++s) {
      replicas.push_back(std::make_unique<StorageServer>(kN, kBlockSize));
      DPSTORE_CHECK_OK(replicas.back()->SetArray(MakeDatabase(kN)));
      pointers.push_back(replicas.back().get());
    }
    MultiServerDpIrOptions options;
    options.num_servers = 2;
    options.epsilon = eps;
    options.alpha = 0.1;
    MultiServerDpIr ir(pointers, options);
    table.AddRow()
        .AddDouble(eps, 2)
        .AddUint(2 * ir.k())
        .AddDouble(MultiServerDpIrLowerBound(kN, eps, 0.1, 0.0, 0.5), 1)
        .AddDouble(xor_work, 0);
  }
  table.Print(std::cout);
}

void CorruptedViewPrivacy() {
  PrintBanner(std::cout,
              "E11c: empirical per-corrupted-server epsilon "
              "(D=4, n=256, 60k trial pairs)");
  constexpr uint64_t kSmallN = 256;
  TablePrinter table({"epsilon_target", "K", "design_eps", "empirical_eps",
                      "one_sided_mass"});
  for (double eps : {2.0, 3.0, 4.0}) {
    std::vector<std::unique_ptr<StorageServer>> replicas;
    std::vector<StorageBackend*> pointers;
    for (uint64_t s = 0; s < 4; ++s) {
      replicas.push_back(std::make_unique<StorageServer>(kSmallN,
                                                         kBlockSize));
      DPSTORE_CHECK_OK(replicas.back()->SetArray(MakeDatabase(kSmallN)));
      pointers.push_back(replicas.back().get());
    }
    MultiServerDpIrOptions options;
    options.num_servers = 4;
    options.epsilon = eps;
    options.alpha = 0.1;
    MultiServerDpIr ir(pointers, options);
    // The adversary corrupts server 0 and observes only its transcript;
    // histogram the Lemma 3.2 membership events there.
    const BlockId qi = 5;
    const BlockId qj = 99;
    EventHistogram hi;
    EventHistogram hj;
    constexpr int kTrials = 60000;
    for (int t = 0; t < kTrials; ++t) {
      for (auto& r : replicas) r->ResetTranscript();
      DPSTORE_CHECK_OK(ir.Query(qi).status());
      hi.Add(DpIrMembershipEvent(pointers[0]->transcript().QueryDownloads(0),
                                 qi, qj));
      for (auto& r : replicas) r->ResetTranscript();
      DPSTORE_CHECK_OK(ir.Query(qj).status());
      hj.Add(DpIrMembershipEvent(pointers[0]->transcript().QueryDownloads(0),
                                 qi, qj));
    }
    DpEstimate est = EstimatePrivacy(hi, hj, /*min_count=*/10);
    table.AddRow()
        .AddDouble(eps, 2)
        .AddUint(ir.k())
        .AddDouble(ir.achieved_epsilon(), 2)
        .AddDouble(est.epsilon_hat, 2)
        .AddScientific(est.one_sided_mass);
  }
  table.Print(std::cout);
}

void Run() {
  ConstructionSweep();
  EpsilonSweep();
  CorruptedViewPrivacy();
  std::cout
      << "\nPaper claim: any multi-server (eps,delta)-DP-IR performs\n"
         "Omega(((1-alpha) t - delta) n / e^eps) expected operations\n"
         "(Thm C.1), and the [49]-style construction is optimal for\n"
         "constant t. Measured: total work tracks the bound within small\n"
         "constants across D and eps, decays exponentially in eps, and at\n"
         "eps = Theta(log n) costs O(1) blocks - versus the XOR PIR's fixed\n"
         "Theta(n) server work for perfect obliviousness.\n";
}

}  // namespace
}  // namespace dpstore

int main() {
  dpstore::bench::BenchJson json("multiserver");
  dpstore::Run();
  json.Emit();
  return 0;
}
