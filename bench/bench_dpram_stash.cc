// Experiment E6 (Theorem 6.1 + Lemma D.1): the DP-RAM client stash holds
// Phi(n) blocks except with negligible probability, for any
// Phi(n) = omega(log n). We sweep Phi choices, run long workloads, and
// report stash occupancy quantiles and the tail beyond 3*Phi(n).
#include <cmath>
#include <iostream>

#include "bench_json.h"

#include "core/dp_ram.h"
#include "util/stats.h"
#include "util/table.h"

namespace dpstore {
namespace {

constexpr uint64_t kN = 1 << 14;
constexpr size_t kRecordSize = 32;

std::vector<Block> MakeDatabase(uint64_t n) {
  std::vector<Block> db(n);
  for (uint64_t i = 0; i < n; ++i) db[i] = MarkerBlock(i, kRecordSize);
  return db;
}

void Run() {
  PrintBanner(std::cout,
              "E6 / Lemma D.1: DP-RAM stash occupancy vs Phi(n) (n=2^14, "
              "20k queries each)");
  double log_n = std::log2(static_cast<double>(kN));
  struct PhiChoice {
    const char* name;
    double phi;
  };
  const PhiChoice choices[] = {
      {"log2(n)", log_n},
      {"log2(n)^1.5 (default)", std::pow(log_n, 1.5)},
      {"log2(n)^2", log_n * log_n},
      {"sqrt(n)", std::sqrt(static_cast<double>(kN))},
  };
  TablePrinter table({"Phi(n)", "p=Phi/n", "mean_stash", "p95", "p99", "peak",
                      "frac_above_3Phi"});
  for (const PhiChoice& choice : choices) {
    DpRamOptions options;
    options.stash_probability = choice.phi / static_cast<double>(kN);
    options.seed = 11;
    DpRam ram(MakeDatabase(kN), options);
    Rng rng(13);
    Percentiles sizes;
    uint64_t above = 0;
    constexpr int kQueries = 20000;
    for (int q = 0; q < kQueries; ++q) {
      DPSTORE_CHECK_OK(ram.Read(rng.Uniform(kN)).status());
      double size = static_cast<double>(ram.stash_size());
      sizes.Add(size);
      if (size > 3.0 * choice.phi) ++above;
    }
    table.AddRow()
        .AddCell(std::string(choice.name) + "=" + FormatDouble(choice.phi, 0))
        .AddScientific(options.stash_probability)
        .AddDouble(sizes.Quantile(0.5), 1)
        .AddDouble(sizes.P95(), 1)
        .AddDouble(sizes.P99(), 1)
        .AddUint(ram.stash_peak_size())
        .AddScientific(static_cast<double>(above) / kQueries);
  }
  table.Print(std::cout);
  std::cout
      << "\nPaper claim: with p <= Phi(n)/n the client stores O(Phi(n))\n"
         "blocks except with negligible probability (Chernoff). Measured:\n"
         "occupancy concentrates at ~Phi(n) (the stationary E[stash] = p*n)\n"
         "with a thin upper tail; the fraction of time above 3*Phi(n) is 0\n"
         "for every omega(log n) choice.\n";
}

}  // namespace
}  // namespace dpstore

int main() {
  dpstore::bench::BenchJson json("dpram_stash");
  dpstore::Run();
  json.Emit();
  return 0;
}
