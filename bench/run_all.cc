// Unified bench runner: executes every bench binary that was built next to
// this driver, forwards DPSTORE_BENCH_JSON_DIR so each one drops its
// BENCH_<name>.json line/file, and prints a pass/fail summary.
//
// Usage:
//   run_all              # run every built bench binary
//   run_all dpkvs two_choice   # run a subset (names with or without bench_)
//   run_all --list       # print the known bench names and exit
//
// Exit status is 0 iff at least one bench ran and every one that ran
// exited 0. Benches that were not built (e.g. bench_throughput without
// google-benchmark) are reported as skipped, not failed, so a minimal
// container can still run the sweep; unknown names and an all-skipped
// sweep are errors, so a misconfigured CI job cannot silently pass.
//
// After the sweep, every BENCH_<cell>.json sidecar in the JSON directory is
// merged into one combined BENCH_all.json ({"benches":[...]}, cells sorted
// by name), so a whole run is a single comparable artifact. When
// DPSTORE_BENCH_JSON_DIR is unset, run_all exports it as the current
// working directory so the sidecars (and the combined file) always land
// somewhere. bench/compare_bench.py diffs two BENCH_all.json files cell by
// cell, which is how the repo tracks its perf trajectory
// (bench/baseline/BENCH_all.json holds the committed reference numbers).
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#ifdef __unix__
#include <sys/wait.h>
#endif

// The bench list is injected by bench/CMakeLists.txt (colon-separated) so
// CMake stays the single source of truth; a bench added there is
// automatically part of the sweep.
#ifndef DPSTORE_BENCH_LIST
#error "DPSTORE_BENCH_LIST must be defined; build run_all via bench/CMakeLists.txt"
#endif

namespace {

std::vector<std::string> KnownBenches() {
  std::vector<std::string> benches;
  std::istringstream in(DPSTORE_BENCH_LIST);
  for (std::string name; std::getline(in, name, ':');) {
    if (!name.empty()) benches.push_back(name);
  }
  return benches;
}

std::string Normalize(std::string name) {
  if (name.rfind("bench_", 0) != 0) name = "bench_" + name;
  return name;
}

bool Selected(const std::string& bench, const std::vector<std::string>& want) {
  if (want.empty()) return true;
  for (const std::string& w : want) {
    if (bench == w) return true;
  }
  return false;
}

// Directory holding this binary (and its sibling benches). argv[0] is
// unreliable under PATH lookup, so prefer /proc/self/exe where it exists.
std::filesystem::path SelfDir(const char* argv0) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path self = fs::read_symlink("/proc/self/exe", ec);
  if (ec) self = fs::absolute(argv0);
  return self.parent_path();
}

std::string DescribeStatus(int raw) {
#ifdef __unix__
  if (WIFEXITED(raw)) return "exit code " + std::to_string(WEXITSTATUS(raw));
  if (WIFSIGNALED(raw)) return "signal " + std::to_string(WTERMSIG(raw));
#endif
  return "status " + std::to_string(raw);
}

// Merges every BENCH_<cell>.json sidecar under `dir` (one JSON object per
// file, as written by bench_json.h) into <dir>/BENCH_all.json. Cells are
// sorted by file name so two runs of the same tree produce byte-comparable
// structure. Returns the number of cells merged.
int MergeBenchJson(const std::filesystem::path& dir) {
  namespace fs = std::filesystem;
  std::vector<std::pair<std::string, std::string>> cells;  // name -> object
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string file = entry.path().filename().string();
    if (file.rfind("BENCH_", 0) != 0 || entry.path().extension() != ".json" ||
        file == "BENCH_all.json") {
      continue;
    }
    std::ifstream in(entry.path());
    std::string object;
    if (!in || !std::getline(in, object) || object.empty()) continue;
    cells.emplace_back(file, object);
  }
  if (ec) {
    std::cerr << "run_all: cannot scan " << dir.string() << ": "
              << ec.message() << "\n";
    return 0;
  }
  std::sort(cells.begin(), cells.end());
  const fs::path combined = dir / "BENCH_all.json";
  std::ofstream out(combined);
  if (!out) {
    std::cerr << "run_all: cannot write " << combined.string() << "\n";
    return 0;
  }
  out << "{\"benches\":[";
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n" << cells[i].second;
  }
  out << "\n]}\n";
  return static_cast<int>(cells.size());
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  const std::vector<std::string> benches = KnownBenches();
  std::vector<std::string> want;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list") {
      for (const std::string& bench : benches) std::cout << bench << "\n";
      return 0;
    }
    want.push_back(Normalize(arg));
  }

  // A typo'd bench name must not silently "pass" by selecting nothing.
  for (const std::string& w : want) {
    bool known = false;
    for (const std::string& bench : benches) {
      if (w == bench) known = true;
    }
    if (!known) {
      std::cerr << "run_all: unknown bench '" << w
                << "' (see run_all --list)\n";
      return 2;
    }
  }

  const fs::path dir = SelfDir(argv[0]);

  // Guarantee the sidecar files (and the combined artifact below) land
  // somewhere: default the JSON directory to the caller's cwd.
  const char* json_dir_env = std::getenv("DPSTORE_BENCH_JSON_DIR");
  const fs::path json_dir =
      json_dir_env != nullptr ? fs::path(json_dir_env) : fs::current_path();
  if (json_dir_env == nullptr) {
    setenv("DPSTORE_BENCH_JSON_DIR", json_dir.string().c_str(),
           /*overwrite=*/0);
  }

  int ran = 0, failed = 0, skipped = 0;
  std::vector<std::string> failures;
  for (const std::string& bench : benches) {
    if (!Selected(bench, want)) continue;
    const fs::path binary = dir / bench;
    if (!fs::exists(binary)) {
      std::cout << "=== " << bench << ": SKIPPED (not built) ===\n";
      ++skipped;
      continue;
    }
    std::cout << "=== " << bench << " ===\n" << std::flush;
    std::string command = "\"";
    command += binary.string();
    command += "\"";
    const int status = std::system(command.c_str());
    ++ran;
    if (status != 0) {
      ++failed;
      failures.push_back(bench);
      std::cout << "=== " << bench << ": FAILED (" << DescribeStatus(status)
                << ") ===\n";
    }
  }

  if (ran > 0) {
    const int cells = MergeBenchJson(json_dir);
    std::cout << "run_all: merged " << cells << " cells into "
              << (json_dir / "BENCH_all.json").string() << "\n";
  }

  std::cout << "\nrun_all: " << ran << " ran, " << failed << " failed, "
            << skipped << " skipped\n";
  for (const std::string& bench : failures) {
    std::cout << "  FAILED: " << bench << "\n";
  }
  if (ran == 0) {
    if (skipped > 0) {
      std::cerr << "run_all: every selected bench was skipped (not built in "
                << dir.string() << ")\n";
    } else {
      std::cerr << "run_all: no bench binaries found next to " << dir.string()
                << "/run_all — run from the build tree\n";
    }
    return 2;
  }
  return failed == 0 ? 0 : 1;
}
