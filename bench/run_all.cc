// Unified bench runner: executes every bench binary that was built next to
// this driver, forwards DPSTORE_BENCH_JSON_DIR so each one drops its
// BENCH_<name>.json line/file, and prints a pass/fail summary.
//
// Usage:
//   run_all              # run every built bench binary
//   run_all dpkvs two_choice   # run a subset (names with or without bench_)
//   run_all --list       # print the known bench names and exit
//
// Exit status is 0 iff at least one bench ran and every one that ran
// exited 0. Benches that were not built (e.g. bench_throughput without
// google-benchmark) are reported as skipped, not failed, so a minimal
// container can still run the sweep; unknown names and an all-skipped
// sweep are errors, so a misconfigured CI job cannot silently pass.
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#ifdef __unix__
#include <sys/wait.h>
#endif

// The bench list is injected by bench/CMakeLists.txt (colon-separated) so
// CMake stays the single source of truth; a bench added there is
// automatically part of the sweep.
#ifndef DPSTORE_BENCH_LIST
#error "DPSTORE_BENCH_LIST must be defined; build run_all via bench/CMakeLists.txt"
#endif

namespace {

std::vector<std::string> KnownBenches() {
  std::vector<std::string> benches;
  std::istringstream in(DPSTORE_BENCH_LIST);
  for (std::string name; std::getline(in, name, ':');) {
    if (!name.empty()) benches.push_back(name);
  }
  return benches;
}

std::string Normalize(std::string name) {
  if (name.rfind("bench_", 0) != 0) name = "bench_" + name;
  return name;
}

bool Selected(const std::string& bench, const std::vector<std::string>& want) {
  if (want.empty()) return true;
  for (const std::string& w : want) {
    if (bench == w) return true;
  }
  return false;
}

// Directory holding this binary (and its sibling benches). argv[0] is
// unreliable under PATH lookup, so prefer /proc/self/exe where it exists.
std::filesystem::path SelfDir(const char* argv0) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path self = fs::read_symlink("/proc/self/exe", ec);
  if (ec) self = fs::absolute(argv0);
  return self.parent_path();
}

std::string DescribeStatus(int raw) {
#ifdef __unix__
  if (WIFEXITED(raw)) return "exit code " + std::to_string(WEXITSTATUS(raw));
  if (WIFSIGNALED(raw)) return "signal " + std::to_string(WTERMSIG(raw));
#endif
  return "status " + std::to_string(raw);
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  const std::vector<std::string> benches = KnownBenches();
  std::vector<std::string> want;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list") {
      for (const std::string& bench : benches) std::cout << bench << "\n";
      return 0;
    }
    want.push_back(Normalize(arg));
  }

  // A typo'd bench name must not silently "pass" by selecting nothing.
  for (const std::string& w : want) {
    bool known = false;
    for (const std::string& bench : benches) {
      if (w == bench) known = true;
    }
    if (!known) {
      std::cerr << "run_all: unknown bench '" << w
                << "' (see run_all --list)\n";
      return 2;
    }
  }

  const fs::path dir = SelfDir(argv[0]);

  int ran = 0, failed = 0, skipped = 0;
  std::vector<std::string> failures;
  for (const std::string& bench : benches) {
    if (!Selected(bench, want)) continue;
    const fs::path binary = dir / bench;
    if (!fs::exists(binary)) {
      std::cout << "=== " << bench << ": SKIPPED (not built) ===\n";
      ++skipped;
      continue;
    }
    std::cout << "=== " << bench << " ===\n" << std::flush;
    std::string command = "\"";
    command += binary.string();
    command += "\"";
    const int status = std::system(command.c_str());
    ++ran;
    if (status != 0) {
      ++failed;
      failures.push_back(bench);
      std::cout << "=== " << bench << ": FAILED (" << DescribeStatus(status)
                << ") ===\n";
    }
  }

  std::cout << "\nrun_all: " << ran << " ran, " << failed << " failed, "
            << skipped << " skipped\n";
  for (const std::string& bench : failures) {
    std::cout << "  FAILED: " << bench << "\n";
  }
  if (ran == 0) {
    if (skipped > 0) {
      std::cerr << "run_all: every selected bench was skipped (not built in "
                << dir.string() << ")\n";
    } else {
      std::cerr << "run_all: no bench binaries found next to " << dir.string()
                << "/run_all — run from the build tree\n";
    }
    return 2;
  }
  return failed == 0 ? 0 : 1;
}
