#include <algorithm>
// Experiment E10 (Theorem 7.5): DP-KVS costs O(log log n) blocks per
// operation vs the ORAM-backed oblivious KVS's Theta(log n log log n) - an
// exponential gap in the n-dependence. We run YCSB-like A/B/C mixes on both
// and print measured blocks/operation across n, plus client storage.
#include <iostream>

#include "bench_json.h"

#include "analysis/workload.h"
#include "core/dp_kvs.h"
#include "oram/cuckoo_oram_kvs.h"
#include "oram/oram_kvs.h"
#include "util/table.h"

namespace dpstore {
namespace {

constexpr size_t kValueSize = 32;

double RunDpKvs(uint64_t capacity, double read_fraction, uint64_t* client) {
  DpKvsOptions options;
  options.capacity = capacity;
  options.value_size = kValueSize;
  options.seed = capacity;
  DpKvs kvs(options);
  Rng rng(7);
  // Preload half the capacity, then run the mix.
  for (uint64_t i = 0; i < capacity / 2; ++i) {
    DPSTORE_CHECK_OK(kvs.Put(ScatterKey(i), MarkerBlock(i, kValueSize)));
  }
  kvs.server().ResetTranscript();
  KvsSequence ops = YcsbKvsSequence(&rng, capacity / 2, 200, read_fraction,
                                    0.99, 0.05);
  for (const KvsOp& op : ops) {
    if (op.type == KvsOp::Type::kPut) {
      DPSTORE_CHECK_OK(kvs.Put(op.key, MarkerBlock(1, kValueSize)));
    } else {
      DPSTORE_CHECK_OK(kvs.Get(op.key).status());
    }
  }
  *client = kvs.super_root_peak_size() +
            kvs.bucket_ram().peak_stashed_bucket_count() *
                kvs.geometry().path_length();
  return static_cast<double>(
             kvs.server().transcript().TotalBlocksMoved()) /
         static_cast<double>(ops.size());
}

double RunOramKvs(uint64_t capacity, double read_fraction) {
  OramKvsOptions options;
  options.capacity = capacity;
  options.value_size = kValueSize;
  options.seed = capacity + 1;
  OramKvs kvs(options);
  Rng rng(9);
  for (uint64_t i = 0; i < capacity / 2; ++i) {
    DPSTORE_CHECK_OK(kvs.Put(ScatterKey(i), MarkerBlock(i, kValueSize)));
  }
  kvs.oram().server().ResetTranscript();
  KvsSequence ops = YcsbKvsSequence(&rng, capacity / 2, 50, read_fraction,
                                    0.99, 0.05);
  for (const KvsOp& op : ops) {
    if (op.type == KvsOp::Type::kPut) {
      DPSTORE_CHECK_OK(kvs.Put(op.key, MarkerBlock(1, kValueSize)));
    } else {
      DPSTORE_CHECK_OK(kvs.Get(op.key).status());
    }
  }
  return static_cast<double>(
             kvs.oram().server().transcript().TotalBlocksMoved()) /
         static_cast<double>(ops.size());
}

double RunCuckooOramKvs(uint64_t capacity, double read_fraction) {
  CuckooOramKvsOptions options;
  options.capacity = capacity;
  options.value_size = kValueSize;
  options.seed = capacity + 2;
  CuckooOramKvs kvs(options);
  Rng rng(11);
  for (uint64_t i = 0; i < capacity / 2; ++i) {
    DPSTORE_CHECK_OK(kvs.Put(ScatterKey(i), MarkerBlock(i, kValueSize)));
  }
  kvs.oram().server().ResetTranscript();
  KvsSequence ops = YcsbKvsSequence(&rng, capacity / 2, 50, read_fraction,
                                    0.99, 0.05);
  for (const KvsOp& op : ops) {
    if (op.type == KvsOp::Type::kPut) {
      DPSTORE_CHECK_OK(kvs.Put(op.key, MarkerBlock(1, kValueSize)));
    } else {
      DPSTORE_CHECK_OK(kvs.Get(op.key).status());
    }
  }
  return static_cast<double>(
             kvs.oram().server().transcript().TotalBlocksMoved()) /
         static_cast<double>(ops.size());
}

void RunMix(const char* name, double read_fraction) {
  PrintBanner(std::cout, std::string("E10: KVS blocks/op vs n (YCSB-") +
                             name + ")");
  TablePrinter table({"n", "dp_kvs", "dp_kvs_client_blocks",
                      "two_choice_oram_kvs", "cuckoo_oram_kvs",
                      "best_oram/dp_kvs", "formula_2*3*s(n)"});
  for (uint64_t log_n = 8; log_n <= 14; log_n += 2) {
    uint64_t n = uint64_t{1} << log_n;
    uint64_t client = 0;
    double dp = RunDpKvs(n, read_fraction, &client);
    double oram = RunOramKvs(n, read_fraction);
    double cuckoo = RunCuckooOramKvs(n, read_fraction);
    BucketTreeGeometry g = BucketTreeGeometry::ForCapacity(n);
    table.AddRow()
        .AddUint(n)
        .AddDouble(dp, 1)
        .AddUint(client)
        .AddDouble(oram, 0)
        .AddDouble(cuckoo, 0)
        .AddDouble(std::min(oram, cuckoo) / dp, 1)
        .AddUint(2 * 3 * g.path_length());
  }
  table.Print(std::cout);
}

void Run() {
  RunMix("A (50/50)", 0.5);
  RunMix("B (95/5)", 0.95);
  RunMix("C (read-only)", 1.0);
  std::cout
      << "\nPaper claim: DP-KVS moves O(log log n) blocks per op with O(n)\n"
         "server storage (Thm 7.5); ORAM-based KVS pays\n"
         "Theta(log n log log n). Measured: DP-KVS stays in the tens of\n"
         "node blocks (tracking 2*3*s(n), growing only when log log n\n"
         "ticks), while the ORAM KVS grows by hundreds of blocks every time\n"
         "n quadruples; the gap widens with n on every mix.\n";
}

}  // namespace
}  // namespace dpstore

int main() {
  dpstore::bench::BenchJson json("dpkvs");
  dpstore::Run();
  json.Emit();
  return 0;
}
